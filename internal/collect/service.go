package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
)

// Wire protocol: every message is a 1-byte opcode framed request followed
// by a framed response. Frames are u32 big-endian length + payload; the
// response payload starts with a 1-byte status (0 = ok, 1 = error string).
const (
	// OpReadSketch returns an encoded Snapshot of the sketch registers.
	OpReadSketch = 1
	// OpResetSketch clears the registers (window rotation).
	OpResetSketch = 2

	statusOK  = 0
	statusErr = 1

	// maxFrame bounds a frame to keep a rogue peer from exhausting
	// memory. Large sketches (tens of MB) still fit comfortably.
	maxFrame = 256 << 20
)

// Source is the data plane the server collects from. Implementations
// provide copy-on-read snapshots: SnapshotSketch returns a consistent copy
// the server owns, taken under the source's own short-lived
// synchronization, so collection never holds a lock across the encode or
// the network write and ingest is stalled for at most one register copy.
// engine.Engine (sharded multi-writer ingest) and LockedSketch
// (single-writer fallback) both satisfy it.
type Source interface {
	// SnapshotSketch returns a consistent register copy the caller owns.
	SnapshotSketch() *core.Sketch
	// ResetSketch clears the registers (window rotation).
	ResetSketch()
}

// Server exposes a data plane's sketch registers over TCP so a controller
// can collect them in batch.
type Server struct {
	src    Source
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer starts serving the source on addr (use "127.0.0.1:0" for an
// ephemeral test port). The source may keep receiving updates; every read
// gets an independent copy-on-read snapshot.
func NewServer(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	s := &Server{src: src, ln: ln, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// LockedSketch adapts a single-writer sketch into a Source: the writer
// wraps updates in Lock/Unlock and the snapshot copy briefly takes the
// same lock. Multi-writer pipelines should use engine.Engine instead,
// whose per-shard locks don't serialize the whole hot path.
type LockedSketch struct {
	mu sync.Mutex
	sk *core.Sketch
}

// NewLockedSketch wraps a sketch with the single-writer lock discipline.
func NewLockedSketch(sk *core.Sketch) *LockedSketch { return &LockedSketch{sk: sk} }

// Lock serializes the writer against snapshot copies; hold it around
// Update calls.
func (l *LockedSketch) Lock() { l.mu.Lock() }

// Unlock releases the writer lock.
func (l *LockedSketch) Unlock() { l.mu.Unlock() }

// Update records one update under the lock.
func (l *LockedSketch) Update(key []byte, inc uint64) {
	l.mu.Lock()
	l.sk.Update(key, inc)
	l.mu.Unlock()
}

// SnapshotSketch implements Source: the lock is held only for the copy.
func (l *LockedSketch) SnapshotSketch() *core.Sketch {
	l.mu.Lock()
	c := l.sk.Clone()
	l.mu.Unlock()
	return c
}

// ResetSketch implements Source.
func (l *LockedSketch) ResetSketch() {
	l.mu.Lock()
	l.sk.Reset()
	l.mu.Unlock()
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Transient accept failure: keep serving.
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

// serve handles one connection until EOF or error.
func (s *Server) serve(conn net.Conn) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		if len(req) < 1 {
			writeError(conn, "empty request") //nolint:errcheck // connection teardown follows
			return
		}
		switch req[0] {
		case OpReadSketch:
			// The source hands over an owned copy; encoding and the
			// network write below run with no data-plane lock held.
			snap := TakeSnapshot(s.src.SnapshotSketch())
			data, err := snap.Encode()
			if err != nil {
				writeError(conn, err.Error()) //nolint:errcheck
				return
			}
			if err := writeFrame(conn, append([]byte{statusOK}, data...)); err != nil {
				return
			}
		case OpResetSketch:
			s.src.ResetSketch()
			if err := writeFrame(conn, []byte{statusOK}); err != nil {
				return
			}
		default:
			writeError(conn, fmt.Sprintf("unknown opcode %d", req[0])) //nolint:errcheck
			return
		}
	}
}

func writeError(conn net.Conn, msg string) error {
	return writeFrame(conn, append([]byte{statusErr}, msg...))
}

// Client pulls snapshots from a Server.
type Client struct {
	conn net.Conn
}

// Dial connects to a collection server with the given timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ReadSketch fetches a register snapshot.
func (c *Client) ReadSketch() (*Snapshot, error) {
	payload, err := c.roundTrip([]byte{OpReadSketch})
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(payload)
}

// ResetSketch clears the data plane's registers (window rotation).
func (c *Client) ResetSketch() error {
	_, err := c.roundTrip([]byte{OpResetSketch})
	return err
}

func (c *Client) roundTrip(req []byte) ([]byte, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("collect: sending request: %w", err)
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("collect: reading response: %w", err)
	}
	if len(resp) < 1 {
		return nil, errors.New("collect: empty response")
	}
	if resp[0] == statusErr {
		return nil, fmt.Errorf("collect: server error: %s", resp[1:])
	}
	return resp[1:], nil
}

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("collect: frame of %dB exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
