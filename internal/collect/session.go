package collect

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
)

// Delta-protocol server state: per-client sessions and the OpReadDelta
// handler. The server promises exactly one thing — a client that applies
// the frames it is sent, in order, ends with registers bit-identical to a
// full snapshot. Everything here exists to keep that promise cheap in the
// common case (steady workload → small delta) and to degrade to a full
// snapshot the moment any assumption slips.

// session is one client's delta baseline bookkeeping. The server keeps two
// snapshots per session: the acked one (the newest state the client has
// confirmed holding, by echoing its generation) and the sent candidate
// (the last response, not yet confirmed — the frame or the next request
// may still be lost in flight). Deltas are only ever diffed against the
// acked snapshot, so a lost response costs one retransmitted delta, never
// a wrong merge.
type session struct {
	mu sync.Mutex

	haveAcked bool
	ackedGen  uint64
	acked     *Snapshot
	ackedCRC  uint32

	haveSent bool
	sentGen  uint64
	sent     *Snapshot
	sentCRC  uint32
}

// sessionStore maps session IDs to baselines with a bounded footprint:
// each session pins up to two snapshots, so the store LRU-evicts beyond
// MaxSessions. An evicted client is not broken — its next request misses
// the store, takes the gen_mismatch fallback, and receives a full
// snapshot that seeds a fresh baseline.
type sessionStore struct {
	mu    sync.Mutex
	max   int
	clock uint64
	byID  map[uint64]*storedSession
}

type storedSession struct {
	sess  *session
	touch uint64
}

func newSessionStore(max int) *sessionStore {
	return &sessionStore{max: max, byID: make(map[uint64]*storedSession)}
}

// lookup returns the session for id, creating (and LRU-evicting) as
// needed. The returned session has its own lock; the store lock is held
// only for the map operation.
func (st *sessionStore) lookup(id uint64) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.clock++
	if s, ok := st.byID[id]; ok {
		s.touch = st.clock
		return s.sess
	}
	if len(st.byID) >= st.max {
		var oldID uint64
		var oldest uint64 = ^uint64(0)
		for sid, s := range st.byID {
			if s.touch < oldest {
				oldest, oldID = s.touch, sid
			}
		}
		delete(st.byID, oldID)
	}
	s := &storedSession{sess: &session{}, touch: st.clock}
	st.byID[id] = s
	return s.sess
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// Fallback reasons, indexed into Server's per-reason counters. Order is
// part of the stats surface (telemetry labels iterate it).
const (
	fbNoBaseline  = iota // client declared no baseline (first poll, or injected loss)
	fbGenMismatch        // client's acked generation is not the one we hold (eviction, restart)
	fbGeometry           // sketch geometry changed between baselines (reconfiguration)
	fbDeltaLarger        // honest delta would outweigh the full snapshot (e.g. post-reset churn)
	fbCount
)

// fallbackReasons names the reasons in counter order.
var fallbackReasons = [fbCount]string{"no_baseline", "gen_mismatch", "geometry", "delta_larger"}

// readDeltaReqLen is the OpReadDelta request: opcode(1), sessionID(8),
// hasBaseline(1), ackedGen(8).
const readDeltaReqLen = 19

// encodeReadDelta builds an OpReadDelta request.
func encodeReadDelta(sessionID uint64, hasBaseline bool, ackedGen uint64) []byte {
	req := make([]byte, readDeltaReqLen)
	req[0] = OpReadDelta
	binary.BigEndian.PutUint64(req[1:], sessionID)
	if hasBaseline {
		req[9] = 1
	}
	binary.BigEndian.PutUint64(req[10:], ackedGen)
	return req
}

// genSnapshot takes the source's snapshot together with a generation
// token. Generational sources (engine.Engine, Aggregator) report their own
// monotonic generation — equal generations imply bit-identical registers
// within one server lifetime, enabling the empty-delta fast path. Plain
// sources get a synthetic per-read counter: the tokens still key the
// session baselines correctly, the fast path just never fires (an
// unchanged sketch still costs one diff producing zero blocks).
func (s *Server) genSnapshot() (*Snapshot, uint64, bool) {
	if s.gsrc != nil {
		sk, gen := s.gsrc.SnapshotSketchGen()
		if sk == nil {
			return nil, 0, true
		}
		return TakeSnapshot(sk), gen, true
	}
	sk := s.src.SnapshotSketch()
	if sk == nil {
		return nil, 0, false
	}
	return TakeSnapshot(sk), s.synthGen.Add(1), false
}

// serveDelta handles one OpReadDelta request. A non-nil return means the
// connection is done (protocol violation or write failure) and must be
// closed — matching the v2 handlers, which close after any error status.
// tr (nil-safe) records the snapshot, diff, and write phases, and names
// the fallback reason when the response degraded to a full snapshot.
func (s *Server) serveDelta(conn net.Conn, req []byte, tr *tracing.Trace, scr *connScratch) error {
	if len(req) != readDeltaReqLen {
		msg := fmt.Sprintf("delta request of %dB, want %d", len(req), readDeltaReqLen)
		s.writeError(conn, msg) //nolint:errcheck // connection teardown follows
		return fmt.Errorf("collect: %s", msg)
	}
	sessionID := binary.BigEndian.Uint64(req[1:])
	hasBaseline := req[9] == 1
	ackedGen := binary.BigEndian.Uint64(req[10:])

	ssp := tr.StartSpan("snapshot")
	cur, curGen, generational := s.genSnapshot()
	ssp.End()
	if cur == nil {
		s.writeError(conn, "no sketch available yet") //nolint:errcheck // teardown follows
		return fmt.Errorf("collect: source has no sketch yet")
	}

	sess := s.sessions.lookup(sessionID)
	sess.mu.Lock()
	// Ack promotion: the client echoing the generation of our unconfirmed
	// candidate proves that response arrived and was applied — the
	// candidate becomes the acked baseline. Echoing the already-acked
	// generation means our last response was lost; the acked baseline
	// stands and the delta below is a retransmission against it.
	if hasBaseline && sess.haveSent && sess.sentGen == ackedGen {
		sess.haveAcked = true
		sess.ackedGen, sess.acked, sess.ackedCRC = sess.sentGen, sess.sent, sess.sentCRC
		sess.haveSent, sess.sent = false, nil
	}

	dsp := tr.StartSpan("diff")
	frame := &DeltaFrame{NewGen: curGen}
	fallback := -1
	switch {
	case !hasBaseline:
		fallback = fbNoBaseline
	case !sess.haveAcked || sess.ackedGen != ackedGen:
		fallback = fbGenMismatch
	case !sess.acked.SameGeometry(cur):
		fallback = fbGeometry
	case generational && curGen == ackedGen:
		// Nothing changed since the acked baseline (generation equality is
		// register equality within a server lifetime): the empty delta.
		frame.BaseGen = ackedGen
		frame.StateCRC = sess.ackedCRC
	default:
		blocks, ok := DiffSnapshots(sess.acked, cur)
		switch {
		case !ok:
			fallback = fbGeometry
		case deltaBlocksEncodedSize(blocks) >= deltaHeaderLen+cur.encodedSizeV2()+deltaTrailerLen:
			fallback = fbDeltaLarger
		default:
			frame.BaseGen = ackedGen
			frame.StateCRC = cur.StateCRC()
			frame.Blocks = blocks
		}
	}
	if fallback >= 0 {
		dsp.Annotate("fallback", fallbackReasons[fallback])
	}
	dsp.End()
	if fallback >= 0 {
		s.fallbacks[fallback].Add(1)
		frame.Full = true
		frame.BaseGen = 0
		frame.StateCRC = cur.StateCRC()
		frame.Snap = cur
	}
	// Record the candidate: if the client comes back echoing curGen, this
	// response arrived and cur becomes its acked baseline.
	sess.haveSent = true
	sess.sentGen, sess.sent, sess.sentCRC = curGen, cur, frame.StateCRC
	sess.mu.Unlock()

	esp := tr.StartSpan("encode")
	// The frame encodes into the connection's reusable response buffer
	// (the session retains cur itself, but never the encoded bytes).
	scr.resp = append(scr.resp[:0], statusOK)
	resp, err := frame.AppendEncode(scr.resp)
	if err != nil {
		esp.Fail(err)
		esp.End()
		s.writeError(conn, err.Error()) //nolint:errcheck // teardown follows
		return err
	}
	scr.resp = resp
	dataLen := len(resp) - 1
	esp.Annotate("bytes", fmt.Sprint(dataLen))
	esp.End()
	wsp := tr.StartSpan("write")
	err = s.writeFrameDeadline(conn, resp)
	if err != nil {
		wsp.Fail(err)
	}
	wsp.End()
	if err != nil {
		return err
	}
	s.deltaReads.Add(1)
	if frame.Full {
		s.fullWireBytes.Add(uint64(dataLen))
		s.log.Debug("full snapshot served (v3)",
			"peer", conn.RemoteAddr().String(), "session", sessionID,
			"reason", fallbackReasons[fallback], "bytes", dataLen, "gen", curGen)
	} else {
		s.deltaWireBytes.Add(uint64(dataLen))
		s.log.Debug("delta served",
			"peer", conn.RemoteAddr().String(), "session", sessionID,
			"blocks", len(frame.Blocks), "bytes", dataLen,
			"base_gen", frame.BaseGen, "gen", curGen)
	}
	return nil
}
