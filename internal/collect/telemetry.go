package collect

import (
	"sync/atomic"

	"github.com/fcmsketch/fcm/internal/telemetry"
)

// The Instrument methods bind a component's Stats() snapshot to registry
// series. labels is an optional Prometheus label set (e.g. `switch="0"`)
// so one registry can carry several pollers or servers side by side; ""
// registers unlabeled series.

// Instrument registers the server's counters: connections, frames served,
// rotations, rejected requests, accept-loop retries.
func (s *Server) Instrument(reg *telemetry.Registry, labels string) {
	bind := statBinder{reg: reg, labels: labels}
	bind.counter("fcm_collect_server_conns_total",
		"Connections ever served by the collection server.",
		func() float64 { return float64(s.totalConns.Load()) })
	bind.gauge("fcm_collect_server_active_conns",
		"Connections being served right now.",
		func() float64 { return float64(s.activeConns.Load()) })
	bind.counter("fcm_collect_server_accept_retries_total",
		"Accept-loop failures that triggered backoff.",
		func() float64 { return float64(s.acceptRetries.Load()) })
	bind.counter("fcm_collect_server_reads_total",
		"Snapshot frames served (OpReadSketch).",
		func() float64 { return float64(s.reads.Load()) })
	bind.counter("fcm_collect_server_resets_total",
		"Window rotations performed (OpResetSketch).",
		func() float64 { return float64(s.resets.Load()) })
	bind.counter("fcm_collect_server_errors_total",
		"Requests answered with an error status.",
		func() float64 { return float64(s.reqErrors.Load()) })
	bind.counter("fcm_collect_rejected_conns_total",
		"Connections closed at the MaxConns cap instead of being served.",
		func() float64 { return float64(s.rejectedConns.Load()) })
	bind.counter("fcm_collect_server_delta_reads_total",
		"Codec v3 responses served (deltas and embedded fulls).",
		func() float64 { return float64(s.deltaReads.Load()) })
	bind.gauge("fcm_collect_server_sessions",
		"Delta sessions currently tracked.",
		func() float64 { return float64(s.sessions.len()) })
	for _, kind := range []struct {
		label string
		ctr   *atomic.Uint64
	}{
		{"delta", &s.deltaWireBytes},
		{"full", &s.fullWireBytes},
	} {
		ctr := kind.ctr
		kindLabel := `kind="` + kind.label + `"`
		if labels != "" {
			kindLabel = labels + "," + kindLabel
		}
		reg.CounterFuncL("fcm_collect_server_wire_bytes_total", kindLabel,
			"Snapshot payload bytes served, split delta vs full.",
			func() float64 { return float64(ctr.Load()) })
	}
	for i := range s.fallbacks {
		ctr := &s.fallbacks[i]
		reasonLabel := `reason="` + fallbackReasons[i] + `"`
		if labels != "" {
			reasonLabel = labels + "," + reasonLabel
		}
		reg.CounterFuncL("fcm_collect_server_fallback_total", reasonLabel,
			"Codec v3 requests degraded to a full snapshot, by reason.",
			func() float64 { return float64(ctr.Load()) })
	}
}

// Instrument registers the client's recovery counters: dials, read
// retries, and decode (CRC) failures.
func (c *Client) Instrument(reg *telemetry.Registry, labels string) {
	bind := statBinder{reg: reg, labels: labels}
	bind.counter("fcm_collect_client_dials_total",
		"Connection establishments (first dial and redials).",
		func() float64 { return float64(c.Stats().Dials) })
	bind.counter("fcm_collect_client_retries_total",
		"Retried idempotent snapshot reads.",
		func() float64 { return float64(c.Stats().Retries) })
	bind.counter("fcm_collect_client_decode_failures_total",
		"Responses that framed cleanly but failed decoding (CRC mismatch).",
		func() float64 { return float64(c.Stats().DecodeFailures) })
	bind.counter("fcm_collect_client_deltas_applied_total",
		"Codec v3 delta frames applied to the local baseline.",
		func() float64 { return float64(c.Stats().DeltasApplied) })
	bind.counter("fcm_collect_client_full_snapshots_total",
		"Full snapshots received on the codec v3 path.",
		func() float64 { return float64(c.Stats().FullSnapshots) })
	bind.counter("fcm_collect_client_delta_fallbacks_total",
		"Client-side baseline invalidations (unapplicable deltas).",
		func() float64 { return float64(c.Stats().DeltaFallbacks) })
	bind.counter("fcm_collect_client_v2_downgrades_total",
		"Permanent downgrades to the v2 protocol (server rejected v3).",
		func() float64 { return float64(c.Stats().V2Downgrades) })
}

// Instrument registers the poller's progress and health series, including
// its client's recovery counters.
func (p *Poller) Instrument(reg *telemetry.Registry, labels string) {
	p.client.Instrument(reg, labels)
	bind := statBinder{reg: reg, labels: labels}
	bind.counter("fcm_poller_collected_total",
		"Snapshots delivered by the collection loop.",
		func() float64 { return float64(p.Stats().Collected) })
	bind.counter("fcm_poller_failed_total",
		"Collection attempts that delivered nothing.",
		func() float64 { return float64(p.Stats().Failed) })
	bind.counter("fcm_poller_skipped_windows_total",
		"Scheduled collections that produced no snapshot.",
		func() float64 { return float64(p.Stats().SkippedWindows) })
	bind.gauge("fcm_poller_consecutive_failures",
		"Current failure streak (0 when healthy).",
		func() float64 { return float64(p.Stats().ConsecutiveFailures) })
	bind.gauge("fcm_poller_state",
		"Poller health: 0 healthy, 1 degraded, 2 down.",
		func() float64 { return float64(p.Stats().State) })
	bind.gauge("fcm_poller_convergence_lag_seconds",
		"Seconds since this poller last delivered a snapshot.",
		p.ConvergenceLag)
	for st := Healthy; st <= Down; st++ {
		st := st
		stateLabel := `state="` + st.String() + `"`
		if labels != "" {
			stateLabel = labels + "," + stateLabel
		}
		reg.CounterFuncL("fcm_poller_transitions_total", stateLabel,
			"Health-state entries by target state.",
			func() float64 { return float64(p.Stats().TransitionsTo[st]) })
	}
}

// statBinder registers labeled or unlabeled Func series depending on
// whether a label set was supplied.
type statBinder struct {
	reg    *telemetry.Registry
	labels string
}

func (b statBinder) counter(name, help string, f func() float64) {
	if b.labels == "" {
		b.reg.CounterFunc(name, help, f)
	} else {
		b.reg.CounterFuncL(name, b.labels, help, f)
	}
}

func (b statBinder) gauge(name, help string, f func() float64) {
	if b.labels == "" {
		b.reg.GaugeFunc(name, help, f)
	} else {
		b.reg.GaugeFuncL(name, b.labels, help, f)
	}
}
