package collect

import (
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/faultnet"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// chaosSeed pins every fault draw in this file; ci.sh exports it so the
// chaos run is reproducible by construction.
const chaosSeed = 42

// serveChaos starts a collection server behind a fault injector, with
// short timeouts so injected stalls cost milliseconds, not minutes.
func serveChaos(t *testing.T, src Source, inj *faultnet.Injector) *Server {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(faultnet.Listen(raw, inj), src, ServerConfig{
		ReadTimeout:  250 * time.Millisecond,
		WriteTimeout: 250 * time.Millisecond,
		IdleTimeout:  2 * time.Second,
	})
	return srv
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// baseline (plus slack for runtime helpers), else dumps stacks.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d > baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestChaosThreeSwitchConvergence drives a 3-switch collection run —
// the examples/distributed topology — through injected connection
// refusals, mid-frame resets, latency, short writes, byte corruption and
// black holes, then heals the network and requires:
//
//   - pollers transition Healthy→Degraded(→Down) and back to Healthy,
//   - skipped windows are reported, never silently merged,
//   - the post-recovery merged estimate is register-bit-identical to a
//     fault-free run over the same trace,
//   - nothing leaks a goroutine.
func TestChaosThreeSwitchConvergence(t *testing.T) {
	baseline := runtime.NumGoroutine()
	fam := hashing.NewBobFamily(42)
	newSketch := func() *core.Sketch {
		s, err := core.New(core.Config{
			K: 4, Trees: 2, LeafWidth: 256, Widths: []int{8, 16, 32}, Hash: fam,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// One deterministic trace split across three switches.
	const switches, packets = 3, 30000
	sketches := make([]*core.Sketch, switches)
	for i := range sketches {
		sketches[i] = newSketch()
	}
	for i := uint64(0); i < packets; i++ {
		sketches[i%switches].Update(k(i%997), 1+i%4)
	}

	// Fault-free reference: direct snapshots merged into one sketch.
	reference := newSketch()
	for _, s := range sketches {
		direct, err := TakeSnapshot(s).Restore(fam)
		if err != nil {
			t.Fatal(err)
		}
		if err := reference.Merge(direct); err != nil {
			t.Fatal(err)
		}
	}

	// Chaos run: every fault class at once, deterministic per switch.
	type pollerState struct {
		mu          sync.Mutex
		lastSnap    *Snapshot
		collected   int
		skippedSeen int
		transitions []string
	}
	injectors := make([]*faultnet.Injector, switches)
	servers := make([]*Server, switches)
	pollers := make([]*Poller, switches)
	states := make([]*pollerState, switches)
	for i := 0; i < switches; i++ {
		injectors[i] = faultnet.New(faultnet.Config{
			Seed:          chaosSeed + int64(i),
			RefuseProb:    0.2,
			BlackholeProb: 0.1,
			ResetProb:     0.4,
			ResetAfterMax: 2048,
			CorruptProb:   0.3,
			MaxLatency:    3 * time.Millisecond,
			MaxWriteChunk: 7,
		})
		servers[i] = serveChaos(t, NewLockedSketch(sketches[i]), injectors[i])
		st := &pollerState{}
		states[i] = st
		p, err := NewPoller(PollerConfig{
			Addr:          servers[i].Addr(),
			Interval:      20 * time.Millisecond,
			Timeout:       150 * time.Millisecond,
			Retries:       1,
			DegradedAfter: 1,
			DownAfter:     4,
			OnWindow: func(snap *Snapshot, skipped int) {
				st.mu.Lock()
				st.lastSnap = snap
				st.collected++
				st.skippedSeen += skipped
				st.mu.Unlock()
			},
			OnStateChange: func(from, to State) {
				st.mu.Lock()
				st.transitions = append(st.transitions, from.String()+"->"+to.String())
				st.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		pollers[i] = p
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
	}

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if !time.Now().Before(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Phase 1 — mixed faults: every poller must still manage deliveries
	// (possibly through retries) while resets, corruption, latency and
	// short writes fly.
	waitFor(func() bool {
		for _, p := range pollers {
			if p.Stats().Collected == 0 {
				return false
			}
		}
		return true
	}, "every poller to deliver under mixed faults")

	// Phase 2 — total outage: refuse everything new and cut every live
	// connection. Every poller must notice and degrade.
	for i, inj := range injectors {
		inj.SetConfig(faultnet.Config{Seed: chaosSeed + int64(i), RefuseProb: 1})
		inj.Cut()
	}
	waitFor(func() bool {
		for _, p := range pollers {
			if s := p.Stats(); s.Failed == 0 || s.State == Healthy {
				return false
			}
		}
		return true
	}, "every poller to degrade during the outage")

	// Phase 3 — heal: pollers must converge back to Healthy and deliver
	// clean post-heal snapshots.
	for _, inj := range injectors {
		inj.Heal()
	}
	collectedAtHeal := make([]uint64, switches)
	for i, p := range pollers {
		collectedAtHeal[i] = p.Stats().Collected
	}
	waitFor(func() bool {
		for i, p := range pollers {
			s := p.Stats()
			if s.State != Healthy || s.Collected < collectedAtHeal[i]+3 {
				return false
			}
		}
		return true
	}, "pollers to return to Healthy after healing")

	for _, p := range pollers {
		p.Stop()
	}

	// Health-state and window accounting assertions.
	totalSkipped := 0
	sawDegraded, sawRecovered := false, false
	for i, st := range states {
		st.mu.Lock()
		stats := pollers[i].Stats()
		if st.skippedSeen != int(stats.SkippedWindows) {
			t.Errorf("switch %d: OnWindow reported %d skipped, stats say %d — windows merged silently",
				i, st.skippedSeen, stats.SkippedWindows)
		}
		totalSkipped += st.skippedSeen
		for _, tr := range st.transitions {
			if strings.HasPrefix(tr, "healthy->") {
				sawDegraded = true
			}
			if strings.HasSuffix(tr, "->healthy") {
				sawRecovered = true
			}
		}
		st.mu.Unlock()
	}
	if totalSkipped == 0 {
		t.Error("chaos run skipped no windows — faults did not bite")
	}
	if !sawDegraded || !sawRecovered {
		t.Errorf("missing health transitions (degraded=%v recovered=%v)", sawDegraded, sawRecovered)
	}
	for i, inj := range injectors {
		s := inj.Stats()
		if s.Refused+s.Blackhole+s.Resets+s.Corrupted == 0 {
			t.Errorf("switch %d injector fired no faults: %+v", i, s)
		}
	}

	// Post-recovery convergence: merging the last delivered snapshots is
	// register-bit-identical to the fault-free reference.
	merged := newSketch()
	for i, st := range states {
		st.mu.Lock()
		snap := st.lastSnap
		st.mu.Unlock()
		if snap == nil {
			t.Fatalf("switch %d delivered no snapshot", i)
		}
		restored, err := snap.Restore(fam)
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(restored); err != nil {
			t.Fatal(err)
		}
	}
	if !sketchesEqual(merged, reference) {
		t.Error("post-recovery merged registers differ from fault-free run")
	}

	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestPollerStopPromptUnderBlackhole pins the Stop liveness contract: a
// black-holed switch must not delay Stop by the poll interval or the full
// I/O timeout — cancellation yanks the in-flight read.
func TestPollerStopPromptUnderBlackhole(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultnet.New(faultnet.Config{Seed: chaosSeed, BlackholeProb: 1})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(faultnet.Listen(raw, inj), NewLockedSketch(filledSketch(t)), ServerConfig{})
	defer srv.Close()

	var errs atomic.Int32
	p, err := NewPoller(PollerConfig{
		Addr:     srv.Addr(),
		Interval: 30 * time.Millisecond,
		// Deliberately enormous: Stop must NOT wait this out.
		Timeout:    time.Hour,
		OnSnapshot: func(*Snapshot) { t.Error("snapshot through a black hole") },
		OnError:    func(error) { errs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until a collection is in flight (blocked inside the black
	// hole), then demand a prompt Stop.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	p.Stop()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Stop took %v against a black-holed switch", d)
	}
	checkNoGoroutineLeak(t, baseline)
}

// flakyListener fails its first n Accept calls, then delegates.
type flakyListener struct {
	net.Listener
	failures int32
	calls    atomic.Int32
}

type tempError struct{}

func (tempError) Error() string   { return "synthetic transient accept failure" }
func (tempError) Timeout() bool   { return false }
func (tempError) Temporary() bool { return true }

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.calls.Add(1) <= l.failures {
		return nil, tempError{}
	}
	return l.Listener.Accept()
}

// TestAcceptLoopBackoffRecovers: transient accept failures back off and
// the server keeps serving afterwards.
func TestAcceptLoopBackoffRecovers(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: raw, failures: 4}
	srv := Serve(fl, NewLockedSketch(filledSketch(t)), ServerConfig{})
	defer srv.Close()

	cl, err := NewClient(ClientConfig{Addr: srv.Addr(), IOTimeout: 2 * time.Second, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.ReadSketch(); err != nil {
		t.Fatalf("server never recovered from transient accept errors: %v", err)
	}
	if got := srv.Stats().AcceptRetries; got != 4 {
		t.Errorf("accept retries %d, want 4", got)
	}
}

// alwaysFailListener persistently errors, as under fd exhaustion.
type alwaysFailListener struct {
	net.Listener
	calls  atomic.Int32
	closed atomic.Bool
}

func (l *alwaysFailListener) Accept() (net.Conn, error) {
	if l.closed.Load() {
		return nil, net.ErrClosed
	}
	l.calls.Add(1)
	return nil, tempError{}
}

func (l *alwaysFailListener) Close() error {
	l.closed.Store(true)
	return l.Listener.Close()
}

// TestAcceptLoopNoBusySpin: a persistently failing Accept must poll at
// backoff pace, not spin, and Close must still return promptly.
func TestAcceptLoopNoBusySpin(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &alwaysFailListener{Listener: raw}
	srv := Serve(fl, NewLockedSketch(filledSketch(t)), ServerConfig{})

	time.Sleep(300 * time.Millisecond)
	calls := fl.calls.Load()
	// Backoff 5ms→1s means ~10 calls in 300ms; a busy spin would be
	// millions. Leave generous slack for slow machines.
	if calls > 100 {
		t.Errorf("accept loop spun %d times in 300ms — backoff not applied", calls)
	}
	if calls == 0 {
		t.Error("accept loop never retried")
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("Close blocked %v behind accept backoff", d)
	}
}

// TestServerMaxConns: the connection cap leaves excess peers unserved
// (queued in the backlog) until a slot frees, instead of spawning
// unbounded handlers.
func TestServerMaxConns(t *testing.T) {
	srv, err := NewServerConfig("127.0.0.1:0", NewLockedSketch(filledSketch(t)), ServerConfig{
		MaxConns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.ReadSketch(); err != nil {
		t.Fatal(err)
	}

	// Second client dials fine (kernel backlog) but is not served while
	// the slot is held.
	second, err := NewClient(ClientConfig{Addr: srv.Addr(), IOTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := second.ReadSketch(); err == nil {
		t.Fatal("second connection served beyond MaxConns=1")
	}

	// Freeing the slot lets the next connection through.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := second.ReadSketch(); err == nil {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("second connection never served after slot freed")
		}
	}
}

// TestServerIdleTimeout: a connection that sends nothing is torn down.
func TestServerIdleTimeout(t *testing.T) {
	srv, err := NewServerConfig("127.0.0.1:0", NewLockedSketch(filledSketch(t)), ServerConfig{
		IdleTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection kept open")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("idle teardown took %v, want ~60ms", d)
	}
}

// TestServerCloseUnblocksStalledPeer: Close must not wait for a peer that
// opened a connection and walked away mid-frame.
func TestServerCloseUnblocksStalledPeer(t *testing.T) {
	srv, err := NewServerConfig("127.0.0.1:0", NewLockedSketch(filledSketch(t)), ServerConfig{
		IdleTimeout: time.Hour, // the stall must be broken by Close, not the deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a frame header, then silence.
	if _, err := conn.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("Close blocked %v behind a stalled peer", d)
	}
}

// TestClientRetriesThroughFaults: with retry budget, a read rides through
// deterministic resets/refusals and reports the recovery in its stats.
func TestClientRetriesThroughFaults(t *testing.T) {
	inj := faultnet.New(faultnet.Config{
		Seed:          chaosSeed,
		RefuseProb:    0.4,
		ResetProb:     0.5,
		ResetAfterMax: 512,
	})
	srv := serveChaos(t, NewLockedSketch(filledSketch(t)), inj)
	defer srv.Close()

	cl, err := NewClient(ClientConfig{
		Addr:        srv.Addr(),
		IOTimeout:   300 * time.Millisecond,
		MaxRetries:  20,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		JitterSeed:  chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	snap, err := cl.ReadSketch()
	if err != nil {
		t.Fatalf("read never succeeded through faults: %v", err)
	}
	if snap.Trees != 2 {
		t.Fatalf("snapshot geometry %+v", snap)
	}
	st := cl.Stats()
	if st.Retries == 0 && inj.Stats().Refused+inj.Stats().Resets > 0 {
		t.Log("first attempt happened to succeed; faults never hit this client")
	}
	// The reset path must never be silently retried.
	if cl.cfg.MaxRetries != 20 {
		t.Fatalf("config mangled: %+v", cl.cfg)
	}
}

// TestPollerSkippedWindowReporting: refusals make the poller skip
// windows; after healing, the next delivery reports exactly how many
// were skipped, and the state machine walks Healthy→Degraded→Down→Healthy.
func TestPollerSkippedWindowReporting(t *testing.T) {
	inj := faultnet.New(faultnet.Config{Seed: chaosSeed, RefuseProb: 1})
	srv := serveChaos(t, NewLockedSketch(filledSketch(t)), inj)
	defer srv.Close()

	var mu sync.Mutex
	var skippedReports []int
	var transitions []string
	p, err := NewPoller(PollerConfig{
		Addr:          srv.Addr(),
		Interval:      15 * time.Millisecond,
		Timeout:       100 * time.Millisecond,
		DegradedAfter: 1,
		DownAfter:     3,
		OnWindow: func(_ *Snapshot, skipped int) {
			mu.Lock()
			skippedReports = append(skippedReports, skipped)
			mu.Unlock()
		},
		OnStateChange: func(from, to State) {
			mu.Lock()
			transitions = append(transitions, from.String()+"->"+to.String())
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	// Let it fail past the Down threshold, then heal.
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().State != Down && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Stats().State != Down {
		t.Fatal("poller never reached Down under total refusal")
	}
	failedAtHeal := p.Stats().Failed
	inj.Heal()
	for p.Stats().Collected == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()

	stats := p.Stats()
	if stats.Collected == 0 {
		t.Fatal("no snapshot delivered after healing")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(skippedReports) == 0 || skippedReports[0] < int(failedAtHeal) {
		t.Errorf("first delivery reported %v skipped, want ≥ %d", skippedReports, failedAtHeal)
	}
	want := []string{"healthy->degraded", "degraded->down", "down->healthy"}
	if len(transitions) < len(want) {
		t.Fatalf("transitions %v, want at least %v", transitions, want)
	}
	for i, w := range want {
		if transitions[i] != w {
			t.Errorf("transition %d = %s, want %s (all: %v)", i, transitions[i], w, transitions)
		}
	}
	if stats.State != Healthy {
		t.Errorf("final state %v", stats.State)
	}
}
