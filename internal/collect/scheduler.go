package collect

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
)

// Gate bounds how many collections are in flight at once across the
// pollers sharing it — the controller-side fan-in cap. Without one, N
// staggered pollers still correlate over time (retries, slow switches) and
// a controller can find itself decoding hundreds of snapshots
// simultaneously; with one, excess collections queue briefly instead.
type Gate struct {
	sem chan struct{}
}

// NewGate builds a gate admitting n concurrent collections (n <= 0 means
// 1).
func NewGate(n int) *Gate {
	if n <= 0 {
		n = 1
	}
	return &Gate{sem: make(chan struct{}, n)}
}

// Acquire takes a slot, honoring ctx.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire.
func (g *Gate) Release() { <-g.sem }

// InFlight reports how many slots are currently held.
func (g *Gate) InFlight() int { return len(g.sem) }

// SchedulerConfig shapes a fleet of pollers into a bounded, decorrelated
// collection schedule.
type SchedulerConfig struct {
	// Interval is the per-switch collection period, applied to every
	// member whose own Interval is zero (required if any member omits it).
	Interval time.Duration
	// MaxInFlight caps concurrent collections across all members via a
	// shared Gate (default 8). Members that already carry a Gate keep it.
	MaxInFlight int
	// JitterSeed seeds the per-member delay jitter; 0 means 1, keeping
	// schedules deterministic for tests.
	JitterSeed int64
	// Logger is handed to members that do not carry their own.
	Logger *slog.Logger
	// Tracer is handed to members that do not carry their own, so every
	// scheduled poll records a flight-recorder trace.
	Tracer *tracing.Recorder
}

// Scheduler runs one poller per switch with staggered, jittered start
// times: member i's first collection lands at i*interval/N plus up to one
// slot of seeded jitter, so N switches polled at the same interval spread
// their frames across the whole interval instead of synchronizing into a
// burst at every tick.
type Scheduler struct {
	pollers []*Poller
	gate    *Gate
}

// NewScheduler builds (but does not start) a poller per member config.
// Each member needs at least Addr and a snapshot callback; Interval,
// InitialDelay, Gate and Logger are filled in from the scheduler config
// when absent.
func NewScheduler(cfg SchedulerConfig, members []PollerConfig) (*Scheduler, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("collect: scheduler needs at least one member")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	gate := NewGate(cfg.MaxInFlight)
	rng := rand.New(rand.NewSource(cfg.JitterSeed))
	s := &Scheduler{gate: gate}
	for i := range members {
		m := members[i]
		if m.Interval <= 0 {
			m.Interval = cfg.Interval
		}
		if m.Interval <= 0 {
			return nil, fmt.Errorf("collect: scheduler member %d has no interval", i)
		}
		if m.Gate == nil {
			m.Gate = gate
		}
		if m.Logger == nil {
			m.Logger = cfg.Logger
		}
		if m.Tracer == nil {
			m.Tracer = cfg.Tracer
		}
		if m.InitialDelay <= 0 {
			// Slot i of N plus jitter within the slot. The floor of 1ns
			// keeps the delay nonzero so the staggered-start path runs
			// even for slot 0.
			slot := m.Interval / time.Duration(len(members))
			jitter := time.Duration(1)
			if slot > 1 {
				jitter += time.Duration(rng.Int63n(int64(slot)))
			}
			m.InitialDelay = time.Duration(i)*slot + jitter
		}
		p, err := NewPoller(m)
		if err != nil {
			return nil, fmt.Errorf("collect: scheduler member %d: %w", i, err)
		}
		s.pollers = append(s.pollers, p)
	}
	return s, nil
}

// Start launches every member poller.
func (s *Scheduler) Start() error {
	for i, p := range s.pollers {
		if err := p.Start(); err != nil {
			for _, started := range s.pollers[:i] {
				started.Stop()
			}
			return err
		}
	}
	return nil
}

// Stop halts every member poller and waits for them.
func (s *Scheduler) Stop() {
	for _, p := range s.pollers {
		p.Stop()
	}
}

// Pollers exposes the member pollers (stats, instrumentation, targeted
// health checks).
func (s *Scheduler) Pollers() []*Poller { return s.pollers }

// Gate returns the shared fan-in gate.
func (s *Scheduler) Gate() *Gate { return s.gate }

// MaxConvergenceLag is the worst convergence lag across members — the
// fleet-level freshness number a controller alerts on.
func (s *Scheduler) MaxConvergenceLag() float64 {
	var worst float64
	for _, p := range s.pollers {
		if lag := p.ConvergenceLag(); lag > worst {
			worst = lag
		}
	}
	return worst
}

// Instrument registers the scheduler's fleet-level series; member pollers
// are instrumented individually by the caller if per-switch series are
// wanted (one labeled set per member does not scale to hundreds).
func (s *Scheduler) Instrument(reg *telemetry.Registry, labels string) {
	bind := statBinder{reg: reg, labels: labels}
	bind.gauge("fcm_scheduler_members",
		"Pollers managed by the collection scheduler.",
		func() float64 { return float64(len(s.pollers)) })
	bind.gauge("fcm_scheduler_in_flight",
		"Collections currently holding a fan-in gate slot.",
		func() float64 { return float64(s.gate.InFlight()) })
	bind.gauge("fcm_poller_convergence_lag_seconds",
		"Worst seconds-since-last-snapshot across the scheduled fleet.",
		s.MaxConvergenceLag)
}
