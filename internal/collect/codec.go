// Package collect implements the control-plane collection path of the FCM
// framework (§8.1: "we read FCM-Sketch registers from the data plane in
// batch using runtime APIs"): a compact binary codec for sketch register
// snapshots and a TCP service over which a controller pulls them.
package collect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"slices"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// codec constants.
const (
	snapshotMagic = 0x46434d53 // "FCMS"
	// Version 2 appended the CRC-32C trailer: a flipped bit anywhere in
	// transit must fail decoding, never silently corrupt merged windows.
	snapshotVersion = 2
	// maxSaneBytes bounds decoded allocations against corrupt headers.
	maxSaneBytes = 1 << 30
)

// castagnoli is the CRC-32C table for the snapshot integrity trailer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is a decoded register dump of an FCM-Sketch: its geometry plus
// every stage's raw node values. It carries everything the control plane
// needs (virtual-counter conversion, EM, cardinality); restoring a
// queryable sketch additionally requires the data plane's hash family.
type Snapshot struct {
	K      int
	Trees  int
	W1     int
	Widths []int
	// Values[t][l] holds tree t, stage l node values.
	Values [][][]uint32
}

// TakeSnapshot copies the registers out of a sketch.
func TakeSnapshot(s *core.Sketch) *Snapshot {
	return TakeSnapshotInto(nil, s)
}

// TakeSnapshotInto copies the registers out of a sketch into snap, reusing
// snap's geometry slices and per-stage value buffers when they have the
// capacity — the alloc-free variant for per-poll serve paths. Pass nil to
// build a fresh snapshot. The returned snapshot owns its values (nothing
// aliases sketch state) but shares buffers with snap, so callers that
// retain snapshots across polls must not pass the retained one back in.
func TakeSnapshotInto(snap *Snapshot, s *core.Sketch) *Snapshot {
	if snap == nil {
		snap = &Snapshot{}
	}
	snap.K = s.K()
	snap.Trees = s.NumTrees()
	snap.W1 = s.LeafWidth()
	depth := s.Depth()
	snap.Widths = snap.Widths[:0]
	for l := 0; l < depth; l++ {
		snap.Widths = append(snap.Widths, s.StageWidth(l))
	}
	if cap(snap.Values) < snap.Trees {
		snap.Values = make([][][]uint32, snap.Trees)
	}
	snap.Values = snap.Values[:snap.Trees]
	for t := 0; t < snap.Trees; t++ {
		stages := snap.Values[t]
		if cap(stages) < depth {
			stages = make([][]uint32, depth)
		}
		stages = stages[:depth]
		for l := 0; l < depth; l++ {
			stages[l] = s.StageValuesInto(stages[l], t, l)
		}
		snap.Values[t] = stages
	}
	return snap
}

// Restore rebuilds a queryable sketch from the snapshot. fam must be the
// data plane's hash family for count queries to be meaningful; pass nil to
// get a sketch that only supports control-plane conversion.
func (s *Snapshot) Restore(fam hashing.Family) (*core.Sketch, error) {
	sk, err := core.New(core.Config{
		K:         s.K,
		Trees:     s.Trees,
		Widths:    s.Widths,
		LeafWidth: s.W1,
		Hash:      fam,
	})
	if err != nil {
		return nil, fmt.Errorf("collect: restore: %w", err)
	}
	for t := range s.Values {
		for l := range s.Values[t] {
			if err := sk.SetStageValues(t, l, s.Values[t][l]); err != nil {
				return nil, fmt.Errorf("collect: restore: %w", err)
			}
		}
	}
	return sk, nil
}

// VirtualCounters converts the snapshot via a restored sketch, the §4.1
// control-plane step.
func (s *Snapshot) VirtualCounters() ([][]core.VirtualCounter, error) {
	sk, err := s.Restore(nil)
	if err != nil {
		return nil, err
	}
	return sk.VirtualCounters(), nil
}

// Encode serializes the snapshot.
//
// Layout (all big-endian):
//
//	u32 magic, u8 version, u8 trees, u8 stages, u8 pad,
//	u32 k, u32 w1,
//	stages × u8 width-bits,
//	trees × stages × (u32 count, count × u32 value),
//	u32 crc32c over everything above
func (s *Snapshot) Encode() ([]byte, error) {
	return s.AppendEncode(nil)
}

// AppendEncode serializes the snapshot (see Encode for the layout),
// appending to dst and returning the extended slice. The bytes produced
// are identical to Encode's; only the destination differs, letting serve
// paths reuse one response buffer across polls.
func (s *Snapshot) AppendEncode(dst []byte) ([]byte, error) {
	if s.Trees <= 0 || s.Trees > 255 || len(s.Widths) == 0 || len(s.Widths) > 255 {
		return nil, fmt.Errorf("collect: snapshot geometry out of range: trees=%d stages=%d",
			s.Trees, len(s.Widths))
	}
	need := 17 + len(s.Widths)
	for t := 0; t < s.Trees; t++ {
		if len(s.Values[t]) != len(s.Widths) {
			return nil, fmt.Errorf("collect: tree %d has %d stages, want %d",
				t, len(s.Values[t]), len(s.Widths))
		}
		for _, vals := range s.Values[t] {
			need += 4 + 4*len(vals)
		}
	}
	start := len(dst)
	dst = slices.Grow(dst, need)
	dst = binary.BigEndian.AppendUint32(dst, snapshotMagic)
	dst = append(dst, snapshotVersion, uint8(s.Trees), uint8(len(s.Widths)), 0)
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.K))
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.W1))
	for _, b := range s.Widths {
		dst = append(dst, uint8(b))
	}
	for t := 0; t < s.Trees; t++ {
		for _, vals := range s.Values[t] {
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(vals)))
			for _, v := range vals {
				dst = binary.BigEndian.AppendUint32(dst, v)
			}
		}
	}
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli)), nil
}

// DecodeSnapshot parses an encoded snapshot, verifying the CRC-32C
// trailer first so corruption anywhere in the payload is rejected before
// any field is trusted.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("collect: snapshot of %dB too short for checksum", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if want, got := binary.BigEndian.Uint32(trailer), crc32.Checksum(body, castagnoli); want != got {
		return nil, fmt.Errorf("collect: snapshot checksum mismatch (corrupt payload): got 0x%08x want 0x%08x", got, want)
	}
	r := bytes.NewReader(body)
	var hdr struct {
		Magic   uint32
		Version uint8
		Trees   uint8
		Stages  uint8
		Pad     uint8
		K       uint32
		W1      uint32
	}
	if err := binary.Read(r, binary.BigEndian, &hdr); err != nil {
		return nil, fmt.Errorf("collect: decoding header: %w", err)
	}
	if hdr.Magic != snapshotMagic {
		return nil, fmt.Errorf("collect: bad snapshot magic 0x%08x", hdr.Magic)
	}
	if hdr.Version != snapshotVersion {
		return nil, fmt.Errorf("collect: unsupported snapshot version %d", hdr.Version)
	}
	if hdr.Trees == 0 || hdr.Stages == 0 {
		return nil, fmt.Errorf("collect: empty geometry")
	}
	s := &Snapshot{K: int(hdr.K), Trees: int(hdr.Trees), W1: int(hdr.W1)}
	widths := make([]uint8, hdr.Stages)
	if _, err := io.ReadFull(r, widths); err != nil {
		return nil, fmt.Errorf("collect: decoding widths: %w", err)
	}
	for _, b := range widths {
		s.Widths = append(s.Widths, int(b))
	}
	total := 0
	for t := 0; t < s.Trees; t++ {
		var stages [][]uint32
		for l := 0; l < int(hdr.Stages); l++ {
			var n uint32
			if err := binary.Read(r, binary.BigEndian, &n); err != nil {
				return nil, fmt.Errorf("collect: decoding tree %d stage %d length: %w", t, l, err)
			}
			total += int(n) * 4
			if total > maxSaneBytes {
				return nil, fmt.Errorf("collect: snapshot claims over %dB of registers", maxSaneBytes)
			}
			vals := make([]uint32, n)
			if err := binary.Read(r, binary.BigEndian, &vals); err != nil {
				return nil, fmt.Errorf("collect: decoding tree %d stage %d values: %w", t, l, err)
			}
			stages = append(stages, vals)
		}
		s.Values = append(s.Values, stages)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("collect: %d trailing bytes after snapshot", r.Len())
	}
	return s, nil
}
