package collect

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// goldenSnapshotHex is the exact v2 encoding of goldenSketch's snapshot,
// CRC-32C trailer included. It pins the wire format: any codec change that
// alters these bytes breaks decoding for every deployed collector and must
// bump snapshotVersion instead of silently shifting the layout.
//
// Layout (big-endian): magic "FCMS", version 2, trees 1, stages 2, pad,
// k=2, w1=4, width bits {2,4}, then per-stage counts and values
// (leaves [3 3 3 2] — 3 is the 2-bit overflow marker — and stage-1
// [11 2]), then CRC-32C 0xdf55663b over everything before it.
const goldenSnapshotHex = "46434d5302010200000000020000000402040000000400000003000000030000000300000002000000020000000b00000002df55663b"

// goldenSketch builds the fixed sketch the golden vector was produced
// from: 6 flows with sizes 1..6 through a tiny 2-ary geometry whose leaf
// stage overflows, so the encoding exercises marker values too.
func goldenSketch(t *testing.T) *core.Sketch {
	t.Helper()
	return goldenSketchLayout(t, false)
}

// goldenSketchLayout builds the golden sketch in either storage layout:
// compact typed lanes (the default) or the uniform 32-bit widening shim.
// The wire bytes must not depend on which one fed the encoder.
func goldenSketchLayout(t *testing.T, wideLanes bool) *core.Sketch {
	t.Helper()
	s, err := core.New(core.Config{
		K: 2, Trees: 1, Widths: []int{2, 4}, LeafWidth: 4,
		Hash:      hashing.NewBobFamily(0xfc3141 ^ 77),
		WideLanes: wideLanes,
	})
	if err != nil {
		t.Fatal(err)
	}
	var key [4]byte
	for f := uint32(0); f < 6; f++ {
		binary.BigEndian.PutUint32(key[:], f)
		s.Update(key[:], uint64(f)+1)
	}
	return s
}

func TestGoldenSnapshotEncoding(t *testing.T) {
	want, err := hex.DecodeString(goldenSnapshotHex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TakeSnapshot(goldenSketch(t)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot encoding drifted from the pinned v2 golden vector:\n got %x\nwant %x", got, want)
	}
	// The trailer must be CRC-32C (Castagnoli) of the body — pinned
	// explicitly so the integrity check can't silently become a no-op.
	body, trailer := got[:len(got)-4], got[len(got)-4:]
	if sum := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)); binary.BigEndian.Uint32(trailer) != sum {
		t.Fatalf("trailer 0x%x is not the CRC-32C of the body (0x%08x)", trailer, sum)
	}
	if binary.BigEndian.Uint32(trailer) != 0xdf55663b {
		t.Fatalf("trailer 0x%x drifted from pinned 0xdf55663b", trailer)
	}
}

// TestGoldenSnapshotLayoutIndependent pins the codec across counter
// storage layouts: the compact typed-lane sketch and its 32-bit
// widening-shim twin must encode to byte-identical snapshots — the pinned
// golden vector, CRC-32C trailer included. The wire format speaks 32-bit
// register values regardless of how the sketch stores them, so a lane-width
// refactor must never leak into deployed collectors.
func TestGoldenSnapshotLayoutIndependent(t *testing.T) {
	want, err := hex.DecodeString(goldenSnapshotHex)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		wide bool
	}{
		{"compact", false},
		{"wide_shim", true},
	} {
		got, err := TakeSnapshot(goldenSketchLayout(t, tc.wide)).Encode()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s layout drifted from the pinned golden vector:\n got %x\nwant %x", tc.name, got, want)
		}
	}
}

func TestGoldenSnapshotDecodes(t *testing.T) {
	data, _ := hex.DecodeString(goldenSnapshotHex)
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.K != 2 || snap.Trees != 1 || snap.W1 != 4 || len(snap.Widths) != 2 {
		t.Fatalf("decoded geometry %+v drifted", snap)
	}
	restored, err := snap.Restore(hashing.NewBobFamily(0xfc3141 ^ 77))
	if err != nil {
		t.Fatal(err)
	}
	ref := goldenSketch(t)
	if d := ref.FirstRegisterDiff(restored); d != "" {
		t.Fatalf("golden vector does not restore the original registers: %s", d)
	}
}

// TestGoldenSnapshotRejectsEveryBitFlip: the CRC trailer must catch a flip
// at any byte position — header, counter values and the trailer itself.
func TestGoldenSnapshotRejectsEveryBitFlip(t *testing.T) {
	data, _ := hex.DecodeString(goldenSnapshotHex)
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x10
		if _, err := DecodeSnapshot(corrupt); err == nil {
			t.Fatalf("decode accepted a bit flip at byte %d", i)
		}
	}
}

// TestGoldenWireExchange pins the full TCP exchange: the 5-byte
// OpReadSketch request frame and the exact response frame (length prefix,
// status byte, golden payload) a server must produce for the golden
// sketch.
func TestGoldenWireExchange(t *testing.T) {
	payload, _ := hex.DecodeString(goldenSnapshotHex)
	wantResp := make([]byte, 0, 5+len(payload))
	wantResp = binary.BigEndian.AppendUint32(wantResp, uint32(1+len(payload)))
	wantResp = append(wantResp, 0 /* statusOK */)
	wantResp = append(wantResp, payload...)

	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(goldenSketch(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	request := []byte{0, 0, 0, 1, OpReadSketch}
	if _, err := conn.Write(request); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(wantResp))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if !bytes.Equal(got, wantResp) {
		t.Fatalf("wire exchange drifted from golden frame:\n got %x\nwant %x", got, wantResp)
	}
}
