package collect

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/engine"
	"github.com/fcmsketch/fcm/internal/hashing"
)

func k(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func filledSketch(t testing.TB) *core.Sketch {
	t.Helper()
	s, err := core.New(core.Config{
		K: 4, Trees: 2, LeafWidth: 256, Widths: []int{8, 16, 32},
		Hash: hashing.NewBobFamily(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		s.Update(k(i%300), 1+i%5)
	}
	return s
}

func sketchesEqual(a, b *core.Sketch) bool {
	for t := 0; t < a.NumTrees(); t++ {
		for l := 0; l < a.Depth(); l++ {
			av, bv := a.StageValues(t, l), b.StageValues(t, l)
			if len(av) != len(bv) {
				return false
			}
			for i := range av {
				if av[i] != bv[i] {
					return false
				}
			}
		}
	}
	return true
}

func TestSnapshotEncodeDecode(t *testing.T) {
	s := filledSketch(t)
	snap := TakeSnapshot(s)
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 4 || got.Trees != 2 || got.W1 != 256 || len(got.Widths) != 3 {
		t.Fatalf("geometry %+v", got)
	}
	restored, err := got.Restore(hashing.NewBobFamily(42))
	if err != nil {
		t.Fatal(err)
	}
	if !sketchesEqual(s, restored) {
		t.Error("restored sketch differs from original")
	}
	// With the matching hash family, queries agree too.
	for i := uint64(0); i < 300; i++ {
		if s.Estimate(k(i)) != restored.Estimate(k(i)) {
			t.Fatalf("flow %d estimate differs", i)
		}
	}
}

func TestSnapshotVirtualCounters(t *testing.T) {
	s := filledSketch(t)
	snap := TakeSnapshot(s)
	vcs, err := snap.VirtualCounters()
	if err != nil {
		t.Fatal(err)
	}
	want := s.VirtualCounters()
	if len(vcs) != len(want) {
		t.Fatalf("tree count %d want %d", len(vcs), len(want))
	}
	for tr := range vcs {
		if len(vcs[tr]) != len(want[tr]) {
			t.Fatalf("tree %d: %d VCs want %d", tr, len(vcs[tr]), len(want[tr]))
		}
		for i := range vcs[tr] {
			if vcs[tr][i] != want[tr][i] {
				t.Fatalf("tree %d vc %d: %+v want %+v", tr, i, vcs[tr][i], want[tr][i])
			}
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	s := filledSketch(t)
	snap := TakeSnapshot(s)
	before := snap.Values[0][0][0]
	s.Update(k(999999), 1000000)
	for i := 0; i < 10000; i++ {
		s.Update(k(uint64(i)), 3)
	}
	if snap.Values[0][0][0] != before {
		t.Error("snapshot aliases live registers")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := filledSketch(t)
	data, err := TakeSnapshot(s).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"short":     data[:5],
		"bad magic": append([]byte{9, 9, 9, 9}, data[4:]...),
		"trailing":  append(append([]byte{}, data...), 0xff),
		"truncated": data[:len(data)-3],
	}
	for name, d := range cases {
		if _, err := DecodeSnapshot(d); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	// Version mismatch.
	bad := append([]byte{}, data...)
	bad[4] = 99
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("version: expected decode error")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := (&Snapshot{Trees: 0}).Encode(); err == nil {
		t.Error("expected geometry error")
	}
	s := &Snapshot{Trees: 1, Widths: []int{8, 16}, Values: [][][]uint32{{{1}}}}
	if _, err := s.Encode(); err == nil {
		t.Error("expected stage-count mismatch error")
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	s := filledSketch(t)
	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(s))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	snap, err := cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snap.Restore(hashing.NewBobFamily(42))
	if err != nil {
		t.Fatal(err)
	}
	if !sketchesEqual(s, restored) {
		t.Error("collected sketch differs from data plane")
	}

	// Reset over the wire.
	if err := cl.ResetSketch(); err != nil {
		t.Fatal(err)
	}
	snap2, err := cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range snap2.Values {
		for _, stage := range tree {
			for _, v := range stage {
				if v != 0 {
					t.Fatal("registers non-zero after remote reset")
				}
			}
		}
	}
}

func TestServerConcurrentCollect(t *testing.T) {
	ls := NewLockedSketch(filledSketch(t))
	srv, err := NewServer("127.0.0.1:0", ls)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Writer keeps updating through the locked source while readers
	// collect copy-on-read snapshots.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ls.Update(k(i%100), 1)
		}
	}()

	for r := 0; r < 4; r++ {
		cl, err := Dial(srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := cl.ReadSketch(); err != nil {
				t.Fatal(err)
			}
		}
		cl.Close()
	}
	close(stop)
	wg.Wait()
}

// TestServerShardedEngineSource serves a 4-shard engine while 4 writers
// ingest concurrently: collection must observe consistent snapshots and
// never stall ingest (no global lock exists to stall it with).
func TestServerShardedEngineSource(t *testing.T) {
	eng, err := engine.New(engine.Config{
		Shards: 4,
		Build: func() (*core.Sketch, error) {
			return core.New(core.Config{
				K: 4, Trees: 2, LeafWidth: 256, Widths: []int{8, 16, 32},
				Hash: hashing.NewBobFamily(42),
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				eng.UpdateShard(w, k(uint64(w*1000+i%200)), 1)
			}
		}(w)
	}

	cl, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		if _, err := cl.ReadSketch(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	// The final collected snapshot equals the engine's own exact merge.
	snap, err := cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snap.Restore(hashing.NewBobFamily(42))
	if err != nil {
		t.Fatal(err)
	}
	if !sketchesEqual(restored, eng.SnapshotSketch()) {
		t.Error("collected snapshot differs from engine merge")
	}
}

func TestClientDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Error("expected dial error to closed port")
	}
}

func TestServerRejectsUnknownOpcode(t *testing.T) {
	s := filledSketch(t)
	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(s))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.roundTrip([]byte{0xEE}); err == nil {
		t.Error("expected unknown-opcode error")
	}
}

// TestDrainRoundExactlyOnce pins the windowed-aggregation contract: every
// absorbed member snapshot joins exactly one drained round, so a member
// that misses a poll is simply absent from that round — its previous
// (already drained) snapshot is never re-merged. SnapshotSketchGen, by
// contrast, re-merges every member's latest snapshot: correct for
// cumulative collection, double-counting for reset-mode windows.
func TestDrainRoundExactlyOnce(t *testing.T) {
	agg, err := NewAggregator(AggregatorConfig{
		Members:     []PollerConfig{{Addr: "a"}, {Addr: "b"}},
		Interval:    time.Second,
		TrackRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	newSketch := func() *core.Sketch {
		s, err := core.New(core.Config{
			K: 4, Trees: 2, LeafWidth: 256, Widths: []int{8, 16, 32},
			Hash: hashing.NewBobFamily(42),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	intervalSnap := func(flow, n uint64) *Snapshot {
		s := newSketch()
		s.Update(k(flow), n)
		return TakeSnapshot(s)
	}

	// Round 1: both members report one interval of traffic.
	if err := agg.storeMember("a", intervalSnap(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := agg.storeMember("b", intervalSnap(2, 7)); err != nil {
		t.Fatal(err)
	}
	r1 := agg.DrainRound()
	if r1 == nil {
		t.Fatal("round 1 drained nil with two pending snapshots")
	}

	// Round 2: only member a reports (b's poll failed).
	if err := agg.storeMember("a", intervalSnap(1, 3)); err != nil {
		t.Fatal(err)
	}
	r2 := agg.DrainRound()
	if r2 == nil {
		t.Fatal("round 2 drained nil with one pending snapshot")
	}
	onlyA2 := newSketch()
	onlyA2.Update(k(1), 3)
	if !sketchesEqual(r2, onlyA2) {
		t.Fatal("round 2 is not bit-identical to member a's interval alone: a missed poll re-contributed stale traffic")
	}

	// The concatenation of drained rounds == serial ingest of every
	// member interval exactly once (merge is exact, §5).
	serial := newSketch()
	serial.Update(k(1), 5)
	serial.Update(k(2), 7)
	serial.Update(k(1), 3)
	folded := r1.Clone()
	if err := folded.Merge(r2); err != nil {
		t.Fatal(err)
	}
	if !sketchesEqual(folded, serial) {
		t.Fatal("merged drained rounds diverge from serial re-ingest of all member intervals")
	}

	// Round 3: nobody reported — nothing to file.
	if got := agg.DrainRound(); got != nil {
		t.Fatalf("round 3 drained %v, want nil (no member reported)", got)
	}

	// Without TrackRounds nothing is retained.
	plain, err := NewAggregator(AggregatorConfig{
		Members:  []PollerConfig{{Addr: "a"}},
		Interval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.storeMember("a", intervalSnap(1, 1)); err != nil {
		t.Fatal(err)
	}
	if plain.DrainRound() != nil {
		t.Fatal("DrainRound returned a sketch without TrackRounds")
	}
}
