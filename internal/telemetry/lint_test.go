package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// populated builds a registry exercising every instrument kind the repo
// registers: plain and func counters/gauges, labeled series, a sharded
// counter, a histogram, and the shared process metrics.
func populated(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	c := reg.Counter("fcm_test_events_total", "Events observed by the lint fixture.")
	c.Add(3)
	g := reg.Gauge("fcm_test_depth", "Current depth of the lint fixture.")
	g.Set(-2)
	reg.CounterFunc("fcm_test_scrapes_total", "Scrape-time computed counter.", func() float64 { return 7 })
	reg.GaugeFuncL("fcm_test_level_occupancy", `level="0"`, "Labeled gauge, level 0.", func() float64 { return 0.5 })
	reg.GaugeFuncL("fcm_test_level_occupancy", `level="1"`, "Labeled gauge, level 1.", func() float64 { return 0.25 })
	sc := reg.ShardedCounter("fcm_test_shard_updates_total", "Per-shard updates.", "shard", 3)
	sc.Add(1, 42)
	h := reg.Histogram("fcm_test_latency_seconds", "Fixture latencies.", nil)
	h.Observe(0.001)
	h.Observe(2.5)
	RegisterProcessMetrics(reg)
	return reg
}

// TestScrapeAndParse round-trips a real HTTP scrape through the
// exposition parser: every series the registry serves must belong to a
// family announced with HELP and TYPE and carry a finite value.
func TestScrapeAndParse(t *testing.T) {
	reg := populated(t)
	srv := httptest.NewServer(reg)
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		"# HELP fcm_test_events_total",
		"# TYPE fcm_test_events_total counter",
		`fcm_test_level_occupancy{level="1"} 0.25`,
		`fcm_test_shard_updates_total{shard="1"} 42`,
		`fcm_test_latency_seconds_bucket{le="+Inf"} 2`,
		"fcm_test_latency_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if errs := LintExposition([]byte(body)); len(errs) != 0 {
		t.Fatalf("scrape failed lint: %v", errs)
	}
	if errs := reg.Lint(); len(errs) != 0 {
		t.Fatalf("registry failed lint: %v", errs)
	}
}

func TestLintExpositionViolations(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"no announcement", "fcm_x_total 1\n", "precedes any HELP/TYPE"},
		{"missing type",
			"# HELP fcm_x_total Things.\nfcm_x_total 1\n", "has no TYPE"},
		{"missing help",
			"# TYPE fcm_x_total counter\nfcm_x_total 1\n", "has no HELP"},
		{"bad type",
			"# HELP fcm_x_total Things.\n# TYPE fcm_x_total widget\nfcm_x_total 1\n", "invalid TYPE"},
		{"duplicate help",
			"# HELP fcm_x_total Things.\n# HELP fcm_x_total Things.\n# TYPE fcm_x_total counter\nfcm_x_total 1\n",
			"duplicate HELP"},
		{"nan value",
			"# HELP fcm_x Things.\n# TYPE fcm_x gauge\nfcm_x NaN\n", "non-finite"},
		{"inf value",
			"# HELP fcm_x Things.\n# TYPE fcm_x gauge\nfcm_x +Inf\n", "non-finite"},
		{"garbage value",
			"# HELP fcm_x Things.\n# TYPE fcm_x gauge\nfcm_x banana\n", "unparseable value"},
		{"malformed labels",
			"# HELP fcm_x Things.\n# TYPE fcm_x gauge\nfcm_x{level=0} 1\n", "malformed label set"},
		{"no value",
			"# HELP fcm_x Things.\n# TYPE fcm_x gauge\nfcm_x\n", "no value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintExposition([]byte(tc.in))
			if len(errs) == 0 {
				t.Fatalf("lint accepted %q", tc.in)
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.wantErr) {
					found = true
				}
			}
			if !found {
				t.Fatalf("errors %v do not mention %q", errs, tc.wantErr)
			}
		})
	}
	if errs := LintExposition([]byte(
		"# HELP fcm_l_seconds Latency.\n# TYPE fcm_l_seconds histogram\n" +
			"fcm_l_seconds_bucket{le=\"0.01\"} 1\nfcm_l_seconds_bucket{le=\"+Inf\"} 2\n" +
			"fcm_l_seconds_sum 1.5\nfcm_l_seconds_count 2\n")); len(errs) != 0 {
		t.Fatalf("lint rejected a well-formed histogram: %v", errs)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: registration did not panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	mustPanic("empty help", func() { reg.CounterFunc("fcm_bad_total", "", func() float64 { return 0 }) })
	mustPanic("bad labels", func() {
		reg.GaugeFuncL("fcm_bad_gauge", `level=0`, "Unquoted label value.", func() float64 { return 0 })
	})
}
