package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Health is the /healthz payload: liveness plus enough identity to tell
// which binary, commit, and configuration produced a measurement.
type Health struct {
	Status        string         `json:"status"`
	Component     string         `json:"component"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Build         BuildInfo      `json:"build"`
	Extra         map[string]any `json:"extra,omitempty"`
}

// NewMux assembles the live-introspection endpoints around a registry:
//
//	/metrics      Prometheus text (or ?format=json)
//	/healthz      JSON health + build info (+ extra fields per scrape)
//	/debug/pprof  CPU/heap/mutex/block and friends (net/http/pprof)
//
// extra, when non-nil, contributes component-specific health fields
// (program, listen address, shard count, …) computed per request.
// extraPaths are additional endpoints the caller mounts on the returned
// mux (e.g. /debug/traces, /debug/insight); they are listed in the "/"
// index so operators can discover them.
func NewMux(reg *Registry, component string, extra func() map[string]any, extraPaths ...string) *http.ServeMux {
	start := time.Now()
	build := Build()
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{
			Status:        "ok",
			Component:     component,
			UptimeSeconds: time.Since(start).Seconds(),
			Build:         build,
		}
		if extra != nil {
			h.Extra = extra()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "%s telemetry\n\n/metrics\n/healthz\n/debug/pprof/\n", component)
		for _, p := range extraPaths {
			fmt.Fprintln(w, p)
		}
	})
	return mux
}

// Serve listens on addr (":0" picks an ephemeral port) and serves mux in
// the background. It returns the bound address and a shutdown function;
// serving errors after a successful listen are dropped — the endpoint is
// diagnostic, never load-bearing.
func Serve(addr string, mux http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // closed on shutdown
	return ln.Addr().String(), srv.Close, nil
}

// RegisterProcessMetrics exports runtime-level series every binary shares:
// goroutines, heap in use, GC cycles, and uptime.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_inuse_bytes", "Heap bytes in use (runtime.MemStats.HeapInuse).",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapInuse)
		})
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
	reg.GaugeFunc("process_uptime_seconds", "Seconds since the process registered telemetry.",
		func() float64 { return time.Since(start).Seconds() })
}
