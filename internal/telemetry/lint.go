package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the scrape-side half of the exposition contract: a small
// parser for the Prometheus text format (version 0.0.4) plus lint checks
// that every sample line belongs to a family announced with `# HELP` and
// `# TYPE`, carries a declared type, and renders a finite value. The
// registry enforces the write side at registration time (no empty help,
// well-formed names and label sets); LintExposition verifies the same
// properties hold on the bytes a scraper actually receives, so tests and
// ci.sh can assert the endpoint output — not just the in-process state —
// is well-formed.

// expositionTypes are the metric types the text format may declare.
var expositionTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// histogramSuffixes are the synthetic series a histogram family expands
// into; a sample `x_bucket{...}` belongs to family `x` when `x` was
// declared a histogram.
var histogramSuffixes = []string{"_bucket", "_sum", "_count"}

// LintExposition parses a Prometheus text scrape and returns every
// violation found: sample lines with no preceding `# HELP`/`# TYPE`
// announcement, duplicate or malformed announcements, unparseable or
// non-finite sample values. A clean scrape returns nil.
func LintExposition(data []byte) []error {
	var errs []error
	type fam struct {
		help, typed bool
		mtype       string
	}
	fams := map[string]*fam{}
	get := func(name string) *fam {
		f, ok := fams[name]
		if !ok {
			f = &fam{}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Plain comments are legal; only HELP/TYPE are structured.
				continue
			}
			name := fields[2]
			f := get(name)
			switch fields[1] {
			case "HELP":
				if f.help {
					errs = append(errs, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name))
				}
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					errs = append(errs, fmt.Errorf("line %d: empty HELP text for %s", lineNo, name))
				}
				f.help = true
			case "TYPE":
				if f.typed {
					errs = append(errs, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name))
				}
				if len(fields) < 4 || !expositionTypes[strings.TrimSpace(fields[3])] {
					errs = append(errs, fmt.Errorf("line %d: invalid TYPE for %s: %q", lineNo, name, line))
				} else {
					f.mtype = strings.TrimSpace(fields[3])
				}
				f.typed = true
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
			continue
		}
		famName := name
		if _, ok := fams[famName]; !ok {
			for _, suf := range histogramSuffixes {
				base := strings.TrimSuffix(name, suf)
				if base != name {
					if bf, ok := fams[base]; ok && bf.mtype == "histogram" {
						famName = base
					}
					break
				}
			}
		}
		f, ok := fams[famName]
		switch {
		case !ok:
			errs = append(errs, fmt.Errorf("line %d: sample %s precedes any HELP/TYPE announcement", lineNo, name))
			continue
		case !f.help:
			errs = append(errs, fmt.Errorf("line %d: family %s has no HELP", lineNo, famName))
		case !f.typed:
			errs = append(errs, fmt.Errorf("line %d: family %s has no TYPE", lineNo, famName))
		}
		// +Inf is legal only as a bucket bound inside the le label; sample
		// values themselves must stay finite or the JSON view breaks.
		if math.IsNaN(value) || math.IsInf(value, 0) {
			errs = append(errs, fmt.Errorf("line %d: non-finite value for %s%s", lineNo, name, labels))
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("scanning exposition: %w", err))
	}
	return errs
}

// parseSampleLine splits `name{labels} value [timestamp]` and validates
// each part.
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = rest[:i], rest[i+1:j], strings.TrimSpace(rest[j+1:])
		if labels == "" || !labelsRe.MatchString(labels) {
			return "", "", 0, fmt.Errorf("malformed label set in %q", line)
		}
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("sample line %q has no value", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !nameRe.MatchString(name) {
		return "", "", 0, fmt.Errorf("invalid metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("sample line %q has %d value fields, want 1-2", line, len(fields))
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

// Lint checks the registry's in-process state against the same contract:
// every family has help text and a known type, and no family is empty
// (registered but exporting no series — usually a forgotten value func).
// Histograms are never empty (they export their own bucket series).
func (r *Registry) Lint() []error {
	var errs []error
	for _, f := range r.snapshotFamilies() {
		if f.help == "" {
			errs = append(errs, fmt.Errorf("family %s has no help text", f.name))
		}
		if !expositionTypes[f.mtype] {
			errs = append(errs, fmt.Errorf("family %s has unknown type %q", f.name, f.mtype))
		}
		if f.hist == nil && len(f.samples) == 0 {
			errs = append(errs, fmt.Errorf("family %s exports no series", f.name))
		}
	}
	return errs
}
