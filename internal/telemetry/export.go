package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): `# HELP` and `# TYPE` lines followed by one line
// per series, histogram families expanded into cumulative `_bucket`
// series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		// Registration rejects empty help, so every family announces
		// itself — the property LintExposition enforces on scrapes.
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.mtype); err != nil {
			return err
		}
		if f.hist != nil {
			if err := writeHistogram(w, f.name, f.hist); err != nil {
				return err
			}
			continue
		}
		for _, s := range f.samples {
			if err := writeSample(w, f.name, "", s.labels, s.value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram family: cumulative buckets with
// `le` labels, then sum and count.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		if err := writeSample(w, name, "_bucket", `le="`+le+`"`, float64(cum)); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := writeSample(w, name, "_bucket", `le="+Inf"`, float64(cum)); err != nil {
		return err
	}
	if err := writeSample(w, name, "_sum", "", h.Sum()); err != nil {
		return err
	}
	return writeSample(w, name, "_count", "", float64(h.Count()))
}

// writeSample renders one series line.
func writeSample(w io.Writer, name, suffix, labels string, v float64) error {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s%s %s\n", name, suffix, labels, strconv.FormatFloat(v, 'g', -1, 64))
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON renders every family as one flat JSON object — the
// expvar-style view. Plain series map "name" or "name{labels}" to their
// value; histograms map to {"count":…, "sum":…, "buckets":{"le":count}}
// with cumulative bucket counts.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]any{}
	for _, f := range r.snapshotFamilies() {
		if f.hist != nil {
			buckets := map[string]uint64{}
			cum := uint64(0)
			for i, bound := range f.hist.bounds {
				cum += f.hist.counts[i].Load()
				buckets[strconv.FormatFloat(bound, 'g', -1, 64)] = cum
			}
			cum += f.hist.counts[len(f.hist.bounds)].Load()
			buckets["+Inf"] = cum
			out[f.name] = map[string]any{
				"count":   f.hist.Count(),
				"sum":     f.hist.Sum(),
				"buckets": buckets,
			}
			continue
		}
		for _, s := range f.samples {
			key := f.name
			if s.labels != "" {
				key += "{" + s.labels + "}"
			}
			out[key] = s.value()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ServeHTTP makes the registry an http.Handler: Prometheus text by
// default, JSON with ?format=json.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w) //nolint:errcheck // client went away
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w) //nolint:errcheck // client went away
}
