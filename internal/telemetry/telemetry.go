// Package telemetry is the self-measurement plane of the FCM reproduction:
// a stdlib-only metrics registry with lock-free instruments, snapshot
// export in Prometheus text exposition format and expvar-style JSON, and
// slog-based structured logging shared by the collection plane.
//
// Design constraints, in order:
//
//  1. Hot-path cost ~0. Instruments are single atomic words (Counter,
//     Gauge) or per-shard padded words (ShardedCounter), so an
//     instrumented sketch Update costs one uncontended atomic add.
//     Anything expensive — occupancy scans, merged snapshots — runs at
//     scrape time through Func metrics, never on the ingest path.
//  2. No dependencies. The exposition format is the Prometheus text
//     format, produced by hand; any Prometheus-compatible scraper (or
//     `fcmctl -metrics`) can read it.
//  3. Registration is explicit and happens at startup; the registry
//     never allocates after that on the write path.
//
// Metric naming follows the Prometheus conventions: `fcm_<subsystem>_
// <name>_<unit>[_total]`, with `_total` reserved for monotonic counters
// and base units (seconds, bytes) spelled out. See DESIGN.md
// ("Observability") for the full series catalogue.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// usable, but counters are normally created through Registry.Counter so
// they export themselves.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// shardSlot pads each counter word to a cache line so neighbouring shards
// never false-share under concurrent writers.
type shardSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a counter split across N independent cache-line-padded
// slots: writer i adds to slot i with no coordination whatsoever, and the
// scrape-time read sums the slots. It is the instrument for per-shard
// ingest paths, where even an uncontended shared atomic would bounce a
// cache line between writers.
type ShardedCounter struct {
	slots []shardSlot
}

// NewShardedCounter builds a counter with n slots (n ≥ 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{slots: make([]shardSlot, n)}
}

// Shards returns the slot count.
func (s *ShardedCounter) Shards() int { return len(s.slots) }

// Add adds n to slot shard. shard must be in [0, Shards()).
func (s *ShardedCounter) Add(shard int, n uint64) { s.slots[shard].v.Add(n) }

// Inc adds one to slot shard.
func (s *ShardedCounter) Inc(shard int) { s.slots[shard].v.Add(1) }

// ShardValue returns slot shard's count.
func (s *ShardedCounter) ShardValue(shard int) uint64 { return s.slots[shard].v.Load() }

// Value returns the sum over all slots. The sum is not a consistent
// point-in-time snapshot under concurrent writers (no counter read is),
// but each slot value is exact and the total is monotone.
func (s *ShardedCounter) Value() uint64 {
	var total uint64
	for i := range s.slots {
		total += s.slots[i].v.Load()
	}
	return total
}

// atomicFloat accumulates a float64 with compare-and-swap over its bits —
// the standard lock-free float accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram: counts per bucket plus a running
// sum and count, all lock-free. Bucket bounds are inclusive upper bounds
// (`le` in Prometheus terms); an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64       // sorted ascending, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given sorted upper bounds.
// Most callers go through Registry.Histogram.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~20); linear scan beats binary search at this
	// size and has no branch misprediction cliff.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveSince records the elapsed seconds since start — the idiom for
// latency sections: defer h.ObserveSince(time.Now()) costs one time read
// when instrumented and nothing when the histogram pointer is nil-guarded.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor — the usual latency layout (e.g. ExpBuckets(1e-5, 4, 10) spans
// 10µs..2.6s).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// DefLatencyBuckets is the default latency layout used across the repo:
// 10µs to ~2.6s in ×4 steps. Snapshot copies, merges, and collection
// round-trips all land inside it.
func DefLatencyBuckets() []float64 { return ExpBuckets(1e-5, 4, 10) }

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// sample is one exported number: an optional label set and a value read at
// scrape time.
type sample struct {
	labels string // preformatted `k="v",k2="v2"`, or ""
	value  func() float64
}

// family is one named metric family: every sample shares the name, help,
// and type. Histograms export through their own path.
type family struct {
	name, help, mtype string
	samples           []sample
	hist              *Histogram // non-nil for histogram families
}

// Registry holds metric families and renders them on demand. Registration
// takes a lock; reads and writes of the instruments themselves never do.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

var (
	nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// labelsRe matches the preformatted label-set strings the *L
	// registrars take: comma-separated name="value" pairs, values free of
	// unescaped quotes/backslashes/newlines.
	labelsRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*$`)
)

// register adds a sample to the named family, creating the family on first
// use. Re-registering a name with a different type, or duplicating an
// exact (name, labels) pair, is a programming error and panics.
func (r *Registry) register(name, labels, help, mtype string, value func() float64, hist *Histogram) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if help == "" {
		// Every family must carry help text: the exposition writer emits
		// `# HELP` unconditionally and scrapers (and Lint) rely on it.
		panic(fmt.Sprintf("telemetry: %s registered without help text", name))
	}
	if labels != "" && !labelsRe.MatchString(labels) {
		panic(fmt.Sprintf("telemetry: %s has malformed label set %q", name, labels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, mtype: mtype, hist: hist}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else {
		if f.mtype != mtype {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, mtype, f.mtype))
		}
		if f.hist != nil || hist != nil {
			panic(fmt.Sprintf("telemetry: histogram %s registered twice", name))
		}
	}
	for _, s := range f.samples {
		if s.labels == labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s{%s}", name, labels))
		}
	}
	if value != nil {
		f.samples = append(f.samples, sample{labels: labels, value: value})
	}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, "", help, "counter", func() float64 { return float64(c.Value()) }, nil)
	return c
}

// CounterFunc registers a counter whose value is computed at scrape time —
// the binding for pre-existing atomic stats (server/client/poller Stats).
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, "", help, "counter", f, nil)
}

// CounterFuncL is CounterFunc with a preformatted label set, e.g.
// `shard="3"`. Multiple label sets may share one family name.
func (r *Registry) CounterFuncL(name, labels, help string, f func() float64) {
	r.register(name, labels, help, "counter", f, nil)
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, "", help, "gauge", func() float64 { return float64(g.Value()) }, nil)
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, "", help, "gauge", f, nil)
}

// GaugeFuncL is GaugeFunc with a preformatted label set.
func (r *Registry) GaugeFuncL(name, labels, help string, f func() float64) {
	r.register(name, labels, help, "gauge", f, nil)
}

// Histogram registers and returns a new histogram over bounds (nil selects
// DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets()
	}
	h := NewHistogram(bounds)
	r.register(name, "", help, "histogram", nil, h)
	return h
}

// ShardedCounter registers a sharded counter exporting one series per
// shard under label `label="<i>"` plus nothing else (scrapers sum).
func (r *Registry) ShardedCounter(name, help, label string, shards int) *ShardedCounter {
	s := NewShardedCounter(shards)
	for i := 0; i < s.Shards(); i++ {
		i := i
		r.register(name, fmt.Sprintf(`%s="%d"`, label, i), help, "counter",
			func() float64 { return float64(s.ShardValue(i)) }, nil)
	}
	return s
}

// snapshotFamilies returns the family list under the lock; the families
// themselves are append-only after registration, so rendering can walk
// them without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.families...)
}
