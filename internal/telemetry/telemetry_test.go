package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge %d, want 5", g.Value())
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	s := NewShardedCounter(4)
	var wg sync.WaitGroup
	const per = 10_000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if s.Value() != 4*per {
		t.Errorf("total %d, want %d", s.Value(), 4*per)
	}
	if s.ShardValue(2) != per {
		t.Errorf("shard 2: %d, want %d", s.ShardValue(2), per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.565; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum %v, want %v", got, want)
	}
	// Bucket occupancy: le=0.01 gets 0.005 and 0.01 (inclusive), le=0.1
	// gets 0.05, le=1 gets 0.5, +Inf gets 5.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: %d, want %d", i, got, w)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 20_000 {
		t.Errorf("count %d", h.Count())
	}
	if got := h.Sum(); got < 19.999 || got > 20.001 {
		t.Errorf("sum %v, want ~20", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-5, 4, 3)
	want := []float64{1e-5, 4e-5, 16e-5}
	for i := range want {
		if b[i] < want[i]*0.999 || b[i] > want[i]*1.001 {
			t.Errorf("bucket %d: %v, want %v", i, b[i], want[i])
		}
	}
}

// promLine matches a valid exposition-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+(Inf)?$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fcm_test_ops_total", "Total ops with a \\ backslash\nand newline.")
	c.Add(3)
	r.GaugeFuncL("fcm_test_occupancy", `level="0"`, "Occupancy.", func() float64 { return 0.25 })
	r.GaugeFuncL("fcm_test_occupancy", `level="1"`, "Occupancy.", func() float64 { return 0.5 })
	h := r.Histogram("fcm_test_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)
	sc := r.ShardedCounter("fcm_test_shard_total", "Per-shard.", "shard", 2)
	sc.Add(1, 9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var families []string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[3])
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if strings.Contains(line, "\n") {
				t.Errorf("unescaped newline in help: %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid sample line: %q", line)
		}
	}
	// Families in registration order: counter, gauge, histogram, counter.
	if want := []string{"counter", "gauge", "histogram", "counter"}; strings.Join(families, ",") != strings.Join(want, ",") {
		t.Errorf("family types %v, want %v", families, want)
	}
	for _, want := range []string{
		"fcm_test_ops_total 3",
		`fcm_test_occupancy{level="0"} 0.25`,
		`fcm_test_occupancy{level="1"} 0.5`,
		`fcm_test_seconds_bucket{le="0.1"} 1`,
		`fcm_test_seconds_bucket{le="1"} 1`,
		`fcm_test_seconds_bucket{le="+Inf"} 2`,
		"fcm_test_seconds_count 2",
		`fcm_test_shard_total{shard="0"} 0`,
		`fcm_test_shard_total{shard="1"} 9`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(2)
	h := r.Histogram("lat_seconds", "l", []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out["a_total"].(float64) != 2 {
		t.Errorf("a_total = %v", out["a_total"])
	}
	hist := out["lat_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Errorf("hist count %v", hist["count"])
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x")
	expectPanic("duplicate series", func() { r.Counter("dup_total", "x") })
	expectPanic("type mismatch", func() { r.Gauge("dup_total", "x") })
	expectPanic("bad name", func() { r.Counter("bad name", "x") })
	expectPanic("duplicate histogram", func() {
		r.Histogram("h_seconds", "x", nil)
		r.Histogram("h_seconds", "x", nil)
	})
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("fcm_mux_ops_total", "ops").Add(1)
	RegisterProcessMetrics(r)
	RegisterBuildInfo(r, Build())
	mux := NewMux(r, "testcomp", func() map[string]any { return map[string]any{"shards": 4} })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "fcm_mux_ops_total 1") ||
		!strings.Contains(body, "go_goroutines") ||
		!strings.Contains(body, "fcm_build_info") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if _, body := get("/metrics?format=json"); !strings.Contains(body, `"fcm_mux_ops_total": 1`) {
		t.Errorf("/metrics json:\n%s", body)
	}
	code, body := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz: %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Component != "testcomp" || h.Extra["shards"].(float64) != 4 {
		t.Errorf("healthz payload: %+v", h)
	}
	if h.Build.GoVersion == "" {
		t.Error("healthz missing build info")
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope: %d, want 404", code)
	}
}

func TestServeAndClose(t *testing.T) {
	r := NewRegistry()
	r.Counter("fcm_serve_total", "x")
	addr, shutdown, err := Serve("127.0.0.1:0", NewMux(r, "t", nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "fcm_serve_total") {
		t.Errorf("metrics body:\n%s", body)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	// The port must be released promptly after shutdown.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server still responding after Close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("expected error for unknown level")
	}
}

func TestLoggers(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo, false)
	l.Debug("hidden")
	l.Info("shown", "k", "v")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "k=v") {
		t.Errorf("text logger output: %q", out)
	}
	buf.Reset()
	j := NewLogger(&buf, slog.LevelDebug, true)
	j.Debug("jmsg", "n", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil || rec["msg"] != "jmsg" {
		t.Errorf("json logger output: %q (%v)", buf.String(), err)
	}
	// Nop must be safe and silent.
	Nop().Error("dropped")
	if OrNop(nil) == nil || OrNop(l) != l {
		t.Error("OrNop contract")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Error("empty GoVersion")
	}
	if b.String() == "" || b.Short() == "" {
		t.Error("empty render")
	}
	long := BuildInfo{Revision: "0123456789abcdef", Dirty: true}
	if got := long.Short(); got != "0123456789ab+dirty" {
		t.Errorf("Short() = %q", got)
	}
}
