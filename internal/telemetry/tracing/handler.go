package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// ExportedSpan is the wire form of one span: IDs in hex, times explicit,
// attrs flattened to a map.
type ExportedSpan struct {
	ID       string            `json:"id"`
	Parent   string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration float64           `json:"duration_seconds"`
	Err      string            `json:"err,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// ExportedTrace is the wire form of one retained trace.
type ExportedTrace struct {
	TraceID  string         `json:"trace_id"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration float64        `json:"duration_seconds"`
	Errored  bool           `json:"errored"`
	Retained []string       `json:"retained"` // which rings hold it: recent, slowest, errored
	Spans    []ExportedSpan `json:"spans"`
}

// Export is the /debug/traces payload.
type Export struct {
	Started  uint64          `json:"traces_started"`
	Finished uint64          `json:"traces_finished"`
	Errored  uint64          `json:"traces_errored"`
	Traces   []ExportedTrace `json:"traces"`
}

// Traces snapshots every retained trace, deduplicated across the rings and
// sorted slowest first (the triage order: the outliers are why you are
// looking). Returns nil on a nil recorder.
func (r *Recorder) Traces() []ExportedTrace {
	if r == nil {
		return nil
	}
	return r.export()
}

func (r *Recorder) export() []ExportedTrace {
	r.mu.Lock()
	classes := map[*Trace][]string{}
	order := []*Trace{}
	note := func(t *Trace, class string) {
		if _, seen := classes[t]; !seen {
			order = append(order, t)
		}
		classes[t] = append(classes[t], class)
	}
	for _, t := range r.recent.all() {
		note(t, "recent")
	}
	for _, t := range r.slowest {
		note(t, "slowest")
	}
	for _, t := range r.errs.all() {
		note(t, "errored")
	}
	r.mu.Unlock()

	out := make([]ExportedTrace, 0, len(order))
	for _, t := range order {
		out = append(out, t.exportLocked(classes[t]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// exportLocked snapshots one trace under its own lock (attrs may still be
// appended by stragglers after End).
func (t *Trace) exportLocked(classes []string) ExportedTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.spans[0]
	et := ExportedTrace{
		TraceID:  fmt.Sprintf("%016x", t.id),
		Name:     root.Name,
		Start:    root.Start,
		Duration: root.Duration.Seconds(),
		Errored:  t.errs > 0,
		Retained: classes,
		Spans:    make([]ExportedSpan, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		es := ExportedSpan{
			ID:       fmt.Sprintf("%016x", sp.ID),
			Name:     sp.Name,
			Start:    sp.Start,
			Duration: sp.Duration.Seconds(),
			Err:      sp.Err,
		}
		if sp.Parent != 0 {
			es.Parent = fmt.Sprintf("%016x", sp.Parent)
		}
		if len(sp.Attrs) > 0 {
			es.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				es.Attrs[a.Key] = a.Value
			}
		}
		et.Spans = append(et.Spans, es)
	}
	return et
}

// ServeHTTP serves the flight recorder: JSON by default, an indented
// human-readable span tree with ?format=text. The recorder is an
// http.Handler so binaries mount it directly at /debug/traces.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	ex := Export{Traces: []ExportedTrace{}}
	if r != nil {
		st := r.Stats()
		ex.Started, ex.Finished, ex.Errored = st.Started, st.Finished, st.Errored
		ex.Traces = r.export()
	}
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, ex)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ex) //nolint:errcheck // client went away
}

// WriteText renders an export the way fcmctl -traces shows it: one header
// line per trace (slowest first), then its spans indented by tree depth
// with durations, attrs, and errors inline.
func WriteText(w io.Writer, ex Export) {
	fmt.Fprintf(w, "traces: %d started, %d finished, %d errored, %d retained\n\n",
		ex.Started, ex.Finished, ex.Errored, len(ex.Traces))
	for _, t := range ex.Traces {
		status := ""
		if t.Errored {
			status = "  ERRORED"
		}
		fmt.Fprintf(w, "trace %s %s %s [%s]%s\n",
			t.TraceID, t.Name, fmtDur(t.Duration), strings.Join(t.Retained, ","), status)
		depth := spanDepths(t.Spans)
		for i, sp := range t.Spans {
			if i == 0 {
				continue // the root is the header line
			}
			line := fmt.Sprintf("%s%s %s", strings.Repeat("  ", depth[sp.ID]), sp.Name, fmtDur(sp.Duration))
			if len(sp.Attrs) > 0 {
				keys := make([]string, 0, len(sp.Attrs))
				for k := range sp.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					line += fmt.Sprintf(" %s=%s", k, sp.Attrs[k])
				}
			}
			if sp.Err != "" {
				line += " ERR: " + sp.Err
			}
			fmt.Fprintln(w, line)
		}
		fmt.Fprintln(w)
	}
}

// spanDepths computes each span's tree depth (root = 0) for indentation.
func spanDepths(spans []ExportedSpan) map[string]int {
	parent := make(map[string]string, len(spans))
	for _, sp := range spans {
		parent[sp.ID] = sp.Parent
	}
	depth := make(map[string]int, len(spans))
	for _, sp := range spans {
		d, id := 0, sp.ID
		for parent[id] != "" && d < len(spans) {
			id = parent[id]
			d++
		}
		depth[sp.ID] = d
	}
	return depth
}

func fmtDur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}
