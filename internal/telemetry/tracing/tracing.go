// Package tracing is the collection plane's flight recorder: lightweight
// spans describing one end-to-end operation (a poll window, a served
// request), retained in fixed-size ring buffers so the most recent, the
// slowest, and every errored trace stay inspectable after the fact over
// /debug/traces — the "which poll caused it" view that counters and
// gauges cannot give.
//
// Design constraints, in order:
//
//  1. Disabled means free. Every entry point is nil-safe: a nil *Recorder
//     starts a nil *Trace, a nil *Trace starts nil *Spans, and every
//     method on a nil receiver is a no-op that allocates nothing. Code is
//     instrumented unconditionally and pays one pointer check per span
//     site when tracing is off.
//  2. Recording is cheap and bounded. Span starts touch only the owning
//     trace's mutex (uncontended: one goroutine drives one trace); the
//     recorder's lock is taken once per finished trace, never per span.
//     Retention is three fixed-size rings — memory is bounded no matter
//     how long the process runs.
//  3. No dependencies. Trace IDs are process-unique counters scrambled
//     through SplitMix64; correlation with logs goes through slog attrs,
//     not a wire protocol.
package tracing

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are preformatted
// strings: spans describe control-plane operations (addresses, fallback
// reasons, byte counts), not high-rate data.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed section of a trace. Spans form a tree through Parent
// span IDs; the root span carries the trace's name.
type Span struct {
	ID       uint64
	Parent   uint64 // 0 for the root span
	Name     string
	Start    time.Time
	Duration time.Duration // 0 until End
	Err      string        // non-empty once Fail was called
	Attrs    []Attr

	t    *Trace
	done bool
}

// Trace is one in-flight operation: a root span plus any children started
// from it. A trace is driven by one goroutine at a time in the common
// case, but span starts and finishes are mutex-guarded so handoffs
// (callbacks, watchdogs) are safe.
type Trace struct {
	rec  *Recorder
	id   uint64
	root *Span // == spans[0]; immutable after StartTrace, readable unlocked

	mu    sync.Mutex
	spans []*Span // spans[0] is the root
	errs  int
	ended bool
}

// splitmix64 scrambles a sequence counter into a well-mixed 64-bit ID.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StartTrace opens a trace whose root span is named name. On a nil or
// disabled recorder it returns nil, and every operation on the nil trace
// is a free no-op.
func (r *Recorder) StartTrace(name string) *Trace {
	if r == nil || !r.enabled.Load() {
		return nil
	}
	r.started.Add(1)
	t := &Trace{rec: r, id: splitmix64(r.seq.Add(1))}
	t.root = &Span{
		ID:    splitmix64(r.seq.Add(1)),
		Name:  name,
		Start: time.Now(),
		t:     t,
	}
	t.spans = append(t.spans, t.root)
	return t
}

// TraceID returns the trace's correlation ID as 16 hex digits, or "" on a
// nil trace.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%016x", t.id)
}

// Root returns the trace's root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a child of the root span. Most instrumentation sites use
// this: the collection loop's phases are flat under one poll trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(name, t.root.ID)
}

// StartChild opens a child of this span (sub-phases, e.g. one retry
// attempt inside a read).
func (sp *Span) StartChild(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.t.startSpan(name, sp.ID)
}

func (t *Trace) startSpan(name string, parent uint64) *Span {
	sp := &Span{
		ID:     splitmix64(t.rec.seq.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
		t:      t,
	}
	t.mu.Lock()
	if !t.ended {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
	return sp
}

// Annotate attaches one key/value attribute to the span.
func (sp *Span) Annotate(key, value string) {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
	sp.t.mu.Unlock()
}

// Fail marks the span errored. The trace as a whole is retained in the
// errored ring if any span failed.
func (sp *Span) Fail(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.t.mu.Lock()
	if sp.Err == "" {
		sp.t.errs++
	}
	sp.Err = err.Error()
	sp.t.mu.Unlock()
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	if !sp.done {
		sp.done = true
		sp.Duration = time.Since(sp.Start)
	}
	sp.t.mu.Unlock()
}

// End closes the trace: the root span and any still-open children are
// ended, and the trace is handed to the recorder's retention rings. A
// trace must be ended exactly once; later span operations are dropped.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.ended {
		t.mu.Unlock()
		return
	}
	t.ended = true
	for _, sp := range t.spans {
		if !sp.done {
			sp.done = true
			sp.Duration = time.Since(sp.Start)
		}
	}
	t.mu.Unlock()
	t.rec.record(t)
}

// LogWith returns l with the trace's correlation ID attached, so every
// record a traced operation emits carries trace_id=… and `fcmctl -traces`
// output joins against the logs. A nil trace returns l unchanged.
func (t *Trace) LogWith(l *slog.Logger) *slog.Logger {
	if t == nil || l == nil {
		return l
	}
	return l.With("trace_id", t.TraceID())
}

// ---------------------------------------------------------------------------
// Context plumbing
// ---------------------------------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying the trace. A nil trace returns ctx
// unchanged, so the disabled path allocates no derived context.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All span
// operations on the nil result are free no-ops, so callees instrument
// unconditionally.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// ---------------------------------------------------------------------------
// Recorder: the flight-recorder retention rings
// ---------------------------------------------------------------------------

// RecorderConfig sizes the retention rings. Zero fields take the defaults.
type RecorderConfig struct {
	// Recent is how many most-recent traces are kept regardless of
	// duration or outcome (default 64).
	Recent int
	// Slowest is how many slowest-ever traces are kept (default 16). A
	// new trace evicts the fastest member once the ring is full, so the
	// worst outliers survive arbitrarily long runs.
	Slowest int
	// Errored is how many most-recent errored traces are kept (default
	// 32), independently of the recent ring — a burst of healthy polls
	// cannot flush the evidence of a failure.
	Errored int
}

const (
	defaultRecent  = 64
	defaultSlowest = 16
	defaultErrored = 32
)

// Recorder retains finished traces in three fixed-size rings: most
// recent, slowest, and errored. The zero value is not usable; a nil
// *Recorder is the disabled state.
type Recorder struct {
	seq     atomic.Uint64
	enabled atomic.Bool

	started  atomic.Uint64
	finished atomic.Uint64
	errored  atomic.Uint64

	mu      sync.Mutex
	recent  ring
	slowest []*Trace // unordered; eviction scans for the fastest (small N)
	errs    ring
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring struct {
	buf  []*Trace
	next int
	n    int
}

func (rb *ring) push(t *Trace) {
	if len(rb.buf) == 0 {
		return
	}
	rb.buf[rb.next] = t
	rb.next = (rb.next + 1) % len(rb.buf)
	if rb.n < len(rb.buf) {
		rb.n++
	}
}

// all returns the ring's traces, oldest first.
func (rb *ring) all() []*Trace {
	out := make([]*Trace, 0, rb.n)
	start := rb.next - rb.n
	for i := 0; i < rb.n; i++ {
		out = append(out, rb.buf[(start+i+len(rb.buf))%len(rb.buf)])
	}
	return out
}

// NewRecorder builds an enabled recorder with the given ring sizes.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Recent <= 0 {
		cfg.Recent = defaultRecent
	}
	if cfg.Slowest <= 0 {
		cfg.Slowest = defaultSlowest
	}
	if cfg.Errored <= 0 {
		cfg.Errored = defaultErrored
	}
	r := &Recorder{
		recent:  ring{buf: make([]*Trace, cfg.Recent)},
		slowest: make([]*Trace, 0, cfg.Slowest),
		errs:    ring{buf: make([]*Trace, cfg.Errored)},
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips recording at runtime. Disabling does not drop retained
// traces; it stops starting new ones (in-flight traces still record).
func (r *Recorder) SetEnabled(v bool) {
	if r != nil {
		r.enabled.Store(v)
	}
}

// Enabled reports whether new traces are being started.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// RecorderStats count the recorder's traffic.
type RecorderStats struct {
	// Started and Finished count traces opened and ended.
	Started, Finished uint64
	// Errored counts finished traces with at least one failed span.
	Errored uint64
	// Retained is how many distinct traces the rings currently hold.
	Retained int
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Started:  r.started.Load(),
		Finished: r.finished.Load(),
		Errored:  r.errored.Load(),
		Retained: len(r.export()),
	}
}

// record files a finished trace into the retention rings.
func (r *Recorder) record(t *Trace) {
	r.finished.Add(1)
	t.mu.Lock()
	errs := t.errs
	dur := t.spans[0].Duration
	t.mu.Unlock()
	if errs > 0 {
		r.errored.Add(1)
	}
	r.mu.Lock()
	r.recent.push(t)
	if errs > 0 {
		r.errs.push(t)
	}
	if len(r.slowest) < cap(r.slowest) {
		r.slowest = append(r.slowest, t)
	} else if len(r.slowest) > 0 {
		fastest, fdur := 0, time.Duration(-1)
		for i, st := range r.slowest {
			if fdur < 0 || st.spans[0].Duration < fdur {
				fastest, fdur = i, st.spans[0].Duration
			}
		}
		if dur > fdur {
			r.slowest[fastest] = t
		}
	}
	r.mu.Unlock()
}
