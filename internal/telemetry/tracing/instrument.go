package tracing

import (
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// Instrument exports the recorder's own traffic counters so scrapes can
// tell whether the flight recorder is on, how much it is seeing, and how
// many traces carried errors — without hitting /debug/traces. Safe on a
// nil recorder (registers constant-zero series, matching the nil-safe
// tracing API).
func (r *Recorder) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("fcm_tracing_enabled",
		"1 while the flight recorder is capturing new traces.",
		func() float64 {
			if r.Enabled() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("fcm_traces_started_total",
		"Traces opened by the flight recorder.",
		func() float64 { return float64(r.Stats().Started) })
	reg.CounterFunc("fcm_traces_finished_total",
		"Traces ended and filed into the retention rings.",
		func() float64 { return float64(r.Stats().Finished) })
	reg.CounterFunc("fcm_traces_errored_total",
		"Finished traces carrying at least one failed span.",
		func() float64 { return float64(r.Stats().Errored) })
	reg.GaugeFunc("fcm_traces_retained",
		"Distinct traces currently held across the recent/slowest/errored rings.",
		func() float64 { return float64(r.Stats().Retained) })
}
