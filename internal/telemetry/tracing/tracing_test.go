package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDisabledTracingAllocatesNothing pins the flight recorder's core
// contract: with no recorder (nil), a fully instrumented code path — trace
// start, context plumbing, spans, attrs, failure marks, end — performs
// zero allocations.
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	var rec *Recorder
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		tr := rec.StartTrace("poll")
		cctx := NewContext(ctx, tr)
		got := FromContext(cctx)
		sp := got.StartSpan("collect")
		sp.Annotate("addr", "127.0.0.1:9401")
		child := sp.StartChild("attempt")
		child.Fail(errNope)
		child.End()
		sp.End()
		tr.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v per op, want 0", allocs)
	}
}

var errNope = errors.New("nope")

// TestDisabledRecorderStartsNothing: SetEnabled(false) on a live recorder
// stops new traces without dropping retained ones.
func TestDisabledRecorderStartsNothing(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("a")
	tr.End()
	rec.SetEnabled(false)
	if tr := rec.StartTrace("b"); tr != nil {
		t.Fatal("disabled recorder started a trace")
	}
	if got := len(rec.Traces()); got != 1 {
		t.Fatalf("retained %d traces after disable, want 1", got)
	}
	rec.SetEnabled(true)
	if tr := rec.StartTrace("c"); tr == nil {
		t.Fatal("re-enabled recorder refused a trace")
	}
}

// TestSpanTreeAndAttrs exercises the span tree, attributes, errors, and
// export shape of one trace.
func TestSpanTreeAndAttrs(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("poll")
	if tr.TraceID() == "" || len(tr.TraceID()) != 16 {
		t.Fatalf("trace ID %q, want 16 hex digits", tr.TraceID())
	}
	collect := tr.StartSpan("collect")
	collect.Annotate("addr", "127.0.0.1:9401")
	att := collect.StartChild("attempt")
	att.Annotate("attempt", "1")
	att.Fail(errors.New("connection refused"))
	att.End()
	collect.End()
	tr.End()

	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	ex := traces[0]
	if ex.Name != "poll" || !ex.Errored {
		t.Fatalf("export = %+v, want name poll, errored", ex)
	}
	if len(ex.Spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(ex.Spans))
	}
	root, col, at := ex.Spans[0], ex.Spans[1], ex.Spans[2]
	if root.Parent != "" {
		t.Fatalf("root has parent %q", root.Parent)
	}
	if col.Parent != root.ID {
		t.Fatalf("collect parent %q, want root %q", col.Parent, root.ID)
	}
	if at.Parent != col.ID {
		t.Fatalf("attempt parent %q, want collect %q", at.Parent, col.ID)
	}
	if at.Err != "connection refused" {
		t.Fatalf("attempt err %q", at.Err)
	}
	if col.Attrs["addr"] != "127.0.0.1:9401" {
		t.Fatalf("collect attrs %v", col.Attrs)
	}
	wantRetained := []string{"recent", "slowest", "errored"}
	if fmt.Sprint(ex.Retained) != fmt.Sprint(wantRetained) {
		t.Fatalf("retained classes %v, want %v", ex.Retained, wantRetained)
	}
}

// TestRetentionPolicy drives more traces than the rings hold and checks
// each ring's invariant: recent keeps the newest R, errored traces survive
// a flood of healthy ones, and the slowest trace survives eviction from
// both.
func TestRetentionPolicy(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 4, Slowest: 2, Errored: 2})

	// One errored trace and one artificially slow trace, early on.
	etr := rec.StartTrace("errored-poll")
	etr.Root().Fail(errors.New("boom"))
	etr.End()
	slow := rec.StartTrace("slow-poll")
	slow.Root().Start = slow.Root().Start.Add(-time.Hour) // fake a 1h duration
	slow.End()

	// Flood with fast healthy traces: far more than Recent.
	for i := 0; i < 20; i++ {
		rec.StartTrace(fmt.Sprintf("fast-%d", i)).End()
	}

	byName := map[string]ExportedTrace{}
	for _, ex := range rec.Traces() {
		byName[ex.Name] = ex
	}
	if _, ok := byName["errored-poll"]; !ok {
		t.Fatal("errored trace evicted by healthy flood")
	}
	if got := byName["slow-poll"]; !has(got.Retained, "slowest") {
		t.Fatalf("slow trace not retained as slowest: %+v", got.Retained)
	}
	if _, ok := byName["fast-19"]; !ok {
		t.Fatal("most recent trace missing from recent ring")
	}
	if _, ok := byName["fast-3"]; ok {
		t.Fatal("ancient fast trace still retained (recent ring did not evict)")
	}
	// Slowest-first ordering: the hour-long trace leads.
	if traces := rec.Traces(); traces[0].Name != "slow-poll" {
		t.Fatalf("export not slowest-first: %q leads", traces[0].Name)
	}
	st := rec.Stats()
	if st.Started != 22 || st.Finished != 22 || st.Errored != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func has(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestSlogCorrelation: LogWith stamps records with the trace ID.
func TestSlogCorrelation(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("poll")
	defer tr.End()
	var buf bytes.Buffer
	log := tr.LogWith(slog.New(slog.NewTextHandler(&buf, nil)))
	log.Info("collection failed")
	if !strings.Contains(buf.String(), "trace_id="+tr.TraceID()) {
		t.Fatalf("log record missing trace_id: %s", buf.String())
	}
	// Nil trace: logger passes through unchanged.
	var nilTr *Trace
	if got := nilTr.LogWith(log); got != log {
		t.Fatal("nil trace did not pass the logger through")
	}
}

// TestHandlerJSONAndText scrapes the recorder over HTTP in both formats.
func TestHandlerJSONAndText(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("poll")
	sp := tr.StartSpan("collect")
	sp.Annotate("addr", "x")
	sp.End()
	tr.End()

	srv := httptest.NewServer(rec)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var ex Export
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		t.Fatalf("JSON export did not parse: %v", err)
	}
	if len(ex.Traces) != 1 || ex.Traces[0].Name != "poll" {
		t.Fatalf("export = %+v", ex)
	}

	resp2, err := srv.Client().Get(srv.URL + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"trace " + tr.TraceID(), "collect", "addr=x"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text export missing %q:\n%s", want, text)
		}
	}
}

// TestEndedTraceDropsLateSpans: spans started after End are not retained
// (the trace is immutable once filed).
func TestEndedTraceDropsLateSpans(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("poll")
	tr.End()
	tr.StartSpan("late").End()
	tr.End() // double-End is a no-op
	if got := rec.Traces(); len(got) != 1 || len(got[0].Spans) != 1 {
		t.Fatalf("late span retained: %+v", got)
	}
	if st := rec.Stats(); st.Finished != 1 {
		t.Fatalf("double End counted twice: %+v", st)
	}
}

// TestConcurrentSpans: spans from several goroutines on one trace are all
// retained without racing (run under -race in ci).
func TestConcurrentSpans(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := rec.StartTrace("poll")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			sp := tr.StartSpan(fmt.Sprintf("worker-%d", i))
			sp.Annotate("i", fmt.Sprint(i))
			sp.End()
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	tr.End()
	if got := len(rec.Traces()[0].Spans); got != 9 {
		t.Fatalf("retained %d spans, want 9", got)
	}
}
