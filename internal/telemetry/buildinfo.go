package telemetry

import (
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary that produced a measurement: module
// version, VCS revision, and toolchain. Filled from
// runtime/debug.ReadBuildInfo, so it is accurate for any `go build` of a
// checked-out tree and degrades to "unknown" fields under `go run` of a
// dirty cache.
type BuildInfo struct {
	// Path is the main module path.
	Path string `json:"path"`
	// Version is the main module version ("(devel)" for a working tree).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, when stamped.
	Revision string `json:"revision"`
	// Time is the VCS commit time, when stamped.
	Time string `json:"time,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty"`
}

// Build reads the running binary's build information.
func Build() BuildInfo {
	b := BuildInfo{Version: "unknown", Revision: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = info.Main.Path
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// Short returns the revision truncated to 12 characters, with a "+dirty"
// suffix when the tree was modified — the form for log lines.
func (b BuildInfo) Short() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "+dirty"
	}
	return rev
}

// String renders a one-line description for -version flags.
func (b BuildInfo) String() string {
	return fmt.Sprintf("%s %s (rev %s, %s)", b.Path, b.Version, b.Short(), b.GoVersion)
}

// LogGroup returns the build info as a slog group attribute, so every
// binary's startup line carries the commit that produced its
// measurements.
func (b BuildInfo) LogGroup() slog.Attr {
	return slog.Group("build",
		slog.String("version", b.Version),
		slog.String("revision", b.Short()),
		slog.String("go", b.GoVersion),
	)
}

// RegisterBuildInfo exports the build as the conventional constant-1
// info series, labeled with version and revision.
func RegisterBuildInfo(reg *Registry, b BuildInfo) {
	reg.GaugeFuncL("fcm_build_info",
		fmt.Sprintf(`version=%q,revision=%q,go=%q`, b.Version, b.Short(), b.GoVersion),
		"Build information of the running binary (value is always 1).",
		func() float64 { return 1 })
}
