package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log level %q (debug, info, warn, error)", s)
	}
}

// NewLogger builds the shared structured logger: text (logfmt-style) by
// default, JSON when jsonFormat is set — one handler threaded through the
// collection plane so every component's records carry the same shape.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// nopHandler drops every record. (slog.DiscardHandler needs go 1.24; the
// module targets 1.22.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// Nop returns a logger that discards everything — the default wherever a
// Logger config field is nil, so instrumentation never needs nil checks.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// OrNop returns l, or the discarding logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Nop()
	}
	return l
}
