// Package univmon implements UnivMon (Liu et al., SIGCOMM 2016 [44]): the
// universal-streaming baseline of §7.5. A cascade of L levels each halves
// the stream by an independent 0/1 sampling hash; every level keeps a
// Count-Sketch plus a top-k heap of its heaviest sampled flows. Any
// g-sum Σ g(f_i) is estimated by the recursive universal-sketch formula
//
//	Y_L = Σ_{f ∈ Q_L} g(w_f)
//	Y_i = 2·Y_{i+1} + Σ_{f ∈ Q_i} g(w_f)·(1 − 2·sampled_{i+1}(f)),
//
// which yields heavy hitters (level-0 heap), cardinality (g = 1) and
// entropy (g = x·log2 x).
package univmon

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/fcmsketch/fcm/internal/countsketch"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// Config parameterizes UnivMon.
type Config struct {
	// MemoryBytes is the total budget: heaps are charged KeySize+8 bytes
	// per entry and the remainder is split evenly over the level sketches.
	MemoryBytes int
	// Levels is the sampling depth L (paper configuration: 16).
	Levels int
	// HeapSize is the per-level heavy-hitter heap capacity (paper: 2K).
	HeapSize int
	// Rows is the Count-Sketch row count per level (default 5).
	Rows int
	// KeySize is the flow-key byte length for accounting (default 4).
	KeySize int
	// Hash supplies hash functions; nil selects BobHash.
	Hash hashing.Family
}

// level is one sampling stage.
type level struct {
	cs      *countsketch.Sketch
	heap    *topHeap
	sampler hashing.Hasher
}

// Sketch is a UnivMon instance.
type Sketch struct {
	levels  []level
	total   uint64
	keySize int
}

// New builds a UnivMon sketch.
func New(cfg Config) (*Sketch, error) {
	L := cfg.Levels
	if L == 0 {
		L = 16
	}
	hs := cfg.HeapSize
	if hs == 0 {
		hs = 2000
	}
	rows := cfg.Rows
	if rows == 0 {
		rows = 5
	}
	ks := cfg.KeySize
	if ks == 0 {
		ks = 4
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0x0171410)
	}
	heapBytes := L * hs * (ks + 8)
	sketchBytes := cfg.MemoryBytes - heapBytes
	perLevel := sketchBytes / L
	if perLevel < rows*8 {
		return nil, fmt.Errorf("univmon: memory %dB too small for %d levels (heaps need %dB)",
			cfg.MemoryBytes, L, heapBytes)
	}
	s := &Sketch{keySize: ks}
	for i := 0; i < L; i++ {
		cs, err := countsketch.New(countsketch.Config{
			MemoryBytes: perLevel,
			Rows:        rows,
			Hash:        &offsetFamily{fam, 100 + i*rows},
		})
		if err != nil {
			return nil, fmt.Errorf("univmon: level %d: %w", i, err)
		}
		s.levels = append(s.levels, level{
			cs:      cs,
			heap:    newTopHeap(hs),
			sampler: fam.New(i),
		})
	}
	return s, nil
}

// offsetFamily shifts indices into a disjoint range of the base family.
type offsetFamily struct {
	fam hashing.Family
	off int
}

func (o *offsetFamily) New(i int) hashing.Hasher { return o.fam.New(i + o.off) }

// sampled reports whether key participates at levels > i, i.e. the level-i
// sampler bit is 1. Level 0 includes everything.
func (s *Sketch) sampled(i int, key []byte) bool {
	return s.levels[i].sampler.Hash(key)&1 == 1
}

// Update implements sketch.Updater.
func (s *Sketch) Update(key []byte, inc uint64) {
	s.total += inc
	for i := range s.levels {
		if i > 0 && !s.sampled(i, key) {
			break
		}
		lv := &s.levels[i]
		lv.cs.Update(key, inc)
		est := lv.cs.EstimateSigned(key)
		if est > 0 {
			lv.heap.offer(key, uint64(est))
		}
	}
}

// Estimate implements sketch.Estimator via the level-0 Count-Sketch.
func (s *Sketch) Estimate(key []byte) uint64 { return s.levels[0].cs.Estimate(key) }

// HeavyHitters returns level-0 heap flows whose current estimate reaches
// the threshold.
func (s *Sketch) HeavyHitters(threshold uint64) map[string]uint64 {
	hh := make(map[string]uint64)
	for _, e := range s.levels[0].heap.entries {
		if est := s.levels[0].cs.Estimate([]byte(e.key)); est >= threshold {
			hh[e.key] = est
		}
	}
	return hh
}

// gSum evaluates the recursive universal-sketch estimator for g.
func (s *Sketch) gSum(g func(w float64) float64) float64 {
	L := len(s.levels)
	y := 0.0
	// Bottom level.
	for _, e := range s.levels[L-1].heap.entries {
		if w := s.levels[L-1].cs.EstimateSigned([]byte(e.key)); w > 0 {
			y += g(float64(w))
		}
	}
	for i := L - 2; i >= 0; i-- {
		yi := 2 * y
		for _, e := range s.levels[i].heap.entries {
			w := s.levels[i].cs.EstimateSigned([]byte(e.key))
			if w <= 0 {
				continue
			}
			ind := 0.0
			if s.sampled(i+1, []byte(e.key)) {
				ind = 1
			}
			yi += g(float64(w)) * (1 - 2*ind)
		}
		y = yi
	}
	if y < 0 {
		y = 0
	}
	return y
}

// Cardinality implements sketch.CardinalityEstimator (g = 1).
func (s *Sketch) Cardinality() float64 {
	return s.gSum(func(float64) float64 { return 1 })
}

// Entropy estimates the flow entropy H = log2(m) − (1/m)·Σ w·log2(w).
func (s *Sketch) Entropy() float64 {
	if s.total == 0 {
		return 0
	}
	m := float64(s.total)
	sum := s.gSum(func(w float64) float64 { return w * math.Log2(w) })
	h := math.Log2(m) - sum/m
	if h < 0 {
		h = 0
	}
	return h
}

// TotalPackets returns the number of updates recorded.
func (s *Sketch) TotalPackets() uint64 { return s.total }

// MemoryBytes implements sketch.Sized.
func (s *Sketch) MemoryBytes() int {
	n := 0
	for i := range s.levels {
		n += s.levels[i].cs.MemoryBytes()
		n += s.levels[i].heap.cap * (s.keySize + 8)
	}
	return n
}

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	s.total = 0
	for i := range s.levels {
		s.levels[i].cs.Reset()
		s.levels[i].heap.reset()
	}
}

// ---------------------------------------------------------------------------
// topHeap: a fixed-capacity min-heap of (key, estimate) with key dedup.
// ---------------------------------------------------------------------------

type heapEntry struct {
	key string
	est uint64
	idx int
}

type topHeap struct {
	entries []*heapEntry
	index   map[string]*heapEntry
	cap     int
}

func newTopHeap(capacity int) *topHeap {
	return &topHeap{index: make(map[string]*heapEntry, capacity), cap: capacity}
}

// heap.Interface implementation.
func (h *topHeap) Len() int           { return len(h.entries) }
func (h *topHeap) Less(i, j int) bool { return h.entries[i].est < h.entries[j].est }
func (h *topHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.entries[i].idx = i
	h.entries[j].idx = j
}
func (h *topHeap) Push(x any) {
	e := x.(*heapEntry)
	e.idx = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *topHeap) Pop() any {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries = h.entries[:n-1]
	return e
}

// offer inserts or refreshes key with the given estimate, keeping only the
// top-cap entries.
func (h *topHeap) offer(key []byte, est uint64) {
	if e, ok := h.index[string(key)]; ok {
		if est != e.est {
			e.est = est
			heap.Fix(h, e.idx)
		}
		return
	}
	if len(h.entries) < h.cap {
		e := &heapEntry{key: string(key), est: est}
		h.index[e.key] = e
		heap.Push(h, e)
		return
	}
	if est <= h.entries[0].est {
		return
	}
	evicted := h.entries[0]
	delete(h.index, evicted.key)
	e := &heapEntry{key: string(key), est: est}
	h.index[e.key] = e
	h.entries[0] = e
	e.idx = 0
	heap.Fix(h, 0)
}

func (h *topHeap) reset() {
	h.entries = h.entries[:0]
	h.index = make(map[string]*heapEntry, h.cap)
}
