package univmon

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"github.com/fcmsketch/fcm/internal/exact"
	"github.com/fcmsketch/fcm/internal/packet"
)

func k(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func newTest(t testing.TB, mem int) *Sketch {
	t.Helper()
	s, err := New(Config{MemoryBytes: mem, Levels: 8, HeapSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 100}); err == nil {
		t.Error("expected error when heaps exceed memory")
	}
}

func TestHeapOffer(t *testing.T) {
	h := newTopHeap(3)
	h.offer([]byte("a"), 10)
	h.offer([]byte("b"), 5)
	h.offer([]byte("c"), 20)
	h.offer([]byte("d"), 1) // below min: rejected
	if len(h.entries) != 3 {
		t.Fatalf("heap size %d", len(h.entries))
	}
	if _, ok := h.index["d"]; ok {
		t.Error("d should have been rejected")
	}
	h.offer([]byte("e"), 30) // evicts b (min=5)
	if _, ok := h.index["b"]; ok {
		t.Error("b should have been evicted")
	}
	h.offer([]byte("a"), 50) // refresh in place
	if h.index["a"].est != 50 {
		t.Error("refresh failed")
	}
	if len(h.entries) != 3 {
		t.Errorf("heap grew on refresh: %d", len(h.entries))
	}
	h.reset()
	if h.Len() != 0 || len(h.index) != 0 {
		t.Error("reset incomplete")
	}
}

func TestHeapOrderMaintained(t *testing.T) {
	h := newTopHeap(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		var key [4]byte
		binary.LittleEndian.PutUint32(key[:], uint32(rng.Intn(40)))
		h.offer(key[:], uint64(rng.Intn(1000)))
	}
	// Validate heap property.
	for i := 1; i < len(h.entries); i++ {
		parent := (i - 1) / 2
		if h.entries[parent].est > h.entries[i].est {
			t.Fatalf("heap property violated at %d", i)
		}
		if h.entries[i].idx != i {
			t.Fatalf("index bookkeeping broken at %d", i)
		}
	}
}

func TestHeavyHitters(t *testing.T) {
	s := newTest(t, 1<<19)
	rng := rand.New(rand.NewSource(2))
	stream := make([]uint64, 0, 100000)
	for h := uint64(0); h < 10; h++ {
		for i := 0; i < 4000; i++ {
			stream = append(stream, h)
		}
	}
	for m := 0; m < 60000; m++ {
		stream = append(stream, 100+uint64(rng.Intn(30000)))
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, id := range stream {
		s.Update(k(id), 1)
	}
	hh := s.HeavyHitters(3000)
	found := 0
	for h := uint64(0); h < 10; h++ {
		if _, ok := hh[string(k(h))]; ok {
			found++
		}
	}
	if found < 9 {
		t.Errorf("found %d/10 heavy hitters", found)
	}
}

func TestCardinality(t *testing.T) {
	s := newTest(t, 1<<19)
	const n = 20000
	for i := 0; i < n; i++ {
		s.Update(k(uint64(i)), 1)
	}
	got := s.Cardinality()
	// UnivMon cardinality is coarse (the paper's Fig. 12d shows ~10×
	// worse error than FCM); accept a wide band.
	if got < n/3 || got > n*3 {
		t.Errorf("cardinality %f way off %d", got, n)
	}
}

func TestEntropy(t *testing.T) {
	s := newTest(t, 1<<19)
	tracker := exact.New()
	rng := rand.New(rand.NewSource(3))
	for f := uint64(0); f < 5000; f++ {
		size := 1 + rng.Intn(5)
		if f%50 == 0 {
			size = 500 + rng.Intn(1000)
		}
		s.Update(k(f), uint64(size))
		var pk packet.Key
		copy(pk.Buf[:], k(f))
		pk.Len = 4
		tracker.UpdateKey(pk, uint64(size))
	}
	got := s.Entropy()
	want := tracker.Entropy()
	if math.Abs(got-want)/want > 0.5 {
		t.Errorf("entropy %f, true %f", got, want)
	}
}

func TestEntropyEmpty(t *testing.T) {
	s := newTest(t, 1<<19)
	if got := s.Entropy(); got != 0 {
		t.Errorf("empty entropy %f", got)
	}
}

func TestLevelSampling(t *testing.T) {
	// Roughly half the flows should reach level 1, a quarter level 2...
	s := newTest(t, 1<<19)
	n := 10000
	reached := make([]int, len(s.levels))
	for i := 0; i < n; i++ {
		key := k(uint64(i))
		for lvl := 0; lvl < len(s.levels); lvl++ {
			if lvl > 0 && !s.sampled(lvl, key) {
				break
			}
			reached[lvl]++
		}
	}
	if reached[0] != n {
		t.Fatalf("level 0 reached %d, want all %d", reached[0], n)
	}
	for lvl := 1; lvl <= 3; lvl++ {
		expect := float64(n) / math.Exp2(float64(lvl))
		if math.Abs(float64(reached[lvl])-expect) > 0.15*expect {
			t.Errorf("level %d reached %d, want ~%.0f", lvl, reached[lvl], expect)
		}
	}
}

func TestMemoryAndReset(t *testing.T) {
	s := newTest(t, 1<<19)
	if s.MemoryBytes() > 1<<19 {
		t.Errorf("memory %d over budget", s.MemoryBytes())
	}
	s.Update(k(1), 100)
	if s.TotalPackets() != 100 {
		t.Errorf("total %d", s.TotalPackets())
	}
	s.Reset()
	if s.TotalPackets() != 0 || s.Estimate(k(1)) != 0 {
		t.Error("reset incomplete")
	}
}

func BenchmarkUpdateUnivMon(b *testing.B) {
	s, err := New(Config{MemoryBytes: 1 << 20, Levels: 16, HeapSize: 2000})
	if err != nil {
		b.Fatal(err)
	}
	var key [4]byte
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint32(key[:], uint32(i%100000))
		s.Update(key[:], 1)
	}
}
