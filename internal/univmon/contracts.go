package univmon

import "github.com/fcmsketch/fcm/internal/sketch"

// Compile-time contract checks: UnivMon offers the full data-plane surface
// (ingest, point queries, cardinality, memory, reset).
var _ sketch.Sketch = (*Sketch)(nil)
