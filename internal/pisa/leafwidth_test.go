package pisa

import (
	"encoding/binary"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// TestSwitchLeafWidthPinsGeometry builds the hardware pipeline and a
// software sketch from the same pinned leaf width, seed and hash mode, and
// checks the pipeline is bit-identical to the software path after a
// shared stream — the property the differential harness sweeps at scale,
// pinned here as a fast unit test for both hash modes.
func TestSwitchLeafWidthPinsGeometry(t *testing.T) {
	for _, perTree := range []bool{false, true} {
		name := "one-pass"
		if perTree {
			name = "per-tree"
		}
		t.Run(name, func(t *testing.T) {
			const seed = 42
			sw, err := NewSwitch(SwitchConfig{
				Program: ProgramFCM, Trees: 2, K: 8, Widths: []int{8, 16, 32},
				LeafWidth: 512, Seed: seed, PerTreeHash: perTree,
			})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.New(core.Config{
				K: 8, Trees: 2, Widths: []int{8, 16, 32}, LeafWidth: 512,
				Hash:        hashing.NewBobFamily(0xfc3141 ^ seed),
				PerTreeHash: perTree,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := sw.Sketch().LeafWidth(); got != 512 {
				t.Fatalf("pipeline leaf width %d, want pinned 512", got)
			}
			var key [4]byte
			for f := uint32(0); f < 3000; f++ {
				binary.BigEndian.PutUint32(key[:], f%257)
				sw.Update(key[:], 1)
				ref.Update(key[:], 1)
			}
			if d := ref.FirstRegisterDiff(sw.Sketch()); d != "" {
				t.Fatalf("pipeline diverged from software sketch: %s", d)
			}
		})
	}
}

// TestSwitchLeafWidthRejectsCMTopK: LeafWidth describes FCM tree geometry;
// the CM program must refuse it rather than ignore it.
func TestSwitchLeafWidthRejectsCMTopK(t *testing.T) {
	_, err := NewSwitch(SwitchConfig{Program: ProgramCMTopK, LeafWidth: 512})
	if err == nil {
		t.Fatal("ProgramCMTopK accepted LeafWidth")
	}
}

// TestSwitchLeafWidthWithTopKFilter: a pinned leaf width plus a Top-K
// filter must work without a MemoryBytes budget — the sketch size is
// implied by the geometry, and the filter carves nothing from it.
func TestSwitchLeafWidthWithTopKFilter(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{
		Program: ProgramFCMTopK, Trees: 2, K: 16, Widths: []int{8, 16, 32},
		LeafWidth: 2048, TopKEntries: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Sketch().LeafWidth(); got != 2048 {
		t.Fatalf("pipeline leaf width %d, want pinned 2048", got)
	}
}
