package pisa

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/cmsketch"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/topk"
)

// Switch executes a compiled measurement program. The per-stage semantics
// of FCM-Sketch on PISA are exactly Algorithm 1 — one single-access
// read-modify-write register op per stage — so the hardware data plane is
// bit-identical to the software sketch (§8.2.1 observes exactly this).
// The hardware differences the paper measures all come from the Top-K
// approximation: a single-level, no-eviction filter (§8.1).
type Switch struct {
	alloc  *Allocation
	sketch *core.Sketch
	filter *topk.Filter // nil for plain FCM
	cm     *cmsketch.Sketch
	tcam   *TCAMCardinality
}

// SwitchConfig builds a hardware data plane.
type SwitchConfig struct {
	// Program selects what runs on the pipeline.
	Program Program
	// MemoryBytes is the sketch budget (filter carved out first for the
	// TopK programs).
	MemoryBytes int
	// LeafWidth pins w1 (stage-1 nodes per tree) directly instead of
	// solving it from MemoryBytes — exactly one of the two must be set for
	// the FCM programs. Pinning the leaf width lets a software sketch and
	// the hardware pipeline be built with byte-for-byte identical
	// geometry, which is what the differential harness asserts on.
	LeafWidth int
	// PerTreeHash forces one independent hash evaluation per tree, the
	// same mode switch as fcm.Config.PerTreeHash. It must match the
	// software sketch's mode for the data planes to be bit-identical
	// (the two modes place counters differently).
	PerTreeHash bool
	// Trees, K, Widths configure the FCM programs (defaults 2, 8/16 per
	// the paper, 8/16/32 bits).
	Trees  int
	K      int
	Widths []int
	// CMRows configures ProgramCMTopK (d arrays of 8-bit registers).
	CMRows int
	// TopKEntries sizes the filter (§8.2.2 uses 16K for CM(d)+TopK).
	TopKEntries int
	// KeyBytes is the flow-key width (default 4).
	KeyBytes int
	// Seed derives hash functions; matching the software seed makes the
	// FCM data planes bit-identical.
	Seed uint32
	// Limits defaults to DefaultLimits().
	Limits *Limits
}

// Program enumerates the compiled data planes of §8.
type Program int

// Supported programs.
const (
	// ProgramFCM is the plain FCM-Sketch (4 stages).
	ProgramFCM Program = iota
	// ProgramFCMTopK is FCM behind a single-level no-eviction filter
	// (8 stages).
	ProgramFCMTopK
	// ProgramCMTopK emulates ElasticSketch: d 8-bit CM arrays behind the
	// same filter.
	ProgramCMTopK
)

// String implements fmt.Stringer.
func (p Program) String() string {
	switch p {
	case ProgramFCM:
		return "FCM-Sketch"
	case ProgramFCMTopK:
		return "FCM+TopK"
	case ProgramCMTopK:
		return "CM+TopK"
	default:
		return fmt.Sprintf("program(%d)", int(p))
	}
}

// NewSwitch compiles and instantiates a hardware data plane.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	limits := DefaultLimits()
	if cfg.Limits != nil {
		limits = *cfg.Limits
	}
	if cfg.Trees == 0 {
		cfg.Trees = 2
	}
	if cfg.K == 0 {
		if cfg.Program == ProgramFCM {
			cfg.K = 8
		} else {
			cfg.K = 16
		}
	}
	if len(cfg.Widths) == 0 {
		cfg.Widths = core.DefaultWidths()
	}
	if cfg.KeyBytes == 0 {
		cfg.KeyBytes = 4
	}

	sw := &Switch{}
	mem := cfg.MemoryBytes
	if cfg.LeafWidth > 0 && cfg.Program == ProgramCMTopK {
		return nil, fmt.Errorf("pisa: LeafWidth requires an FCM program, got %s", cfg.Program)
	}

	if cfg.Program == ProgramFCMTopK || cfg.Program == ProgramCMTopK {
		entries := cfg.TopKEntries
		if entries == 0 {
			entries = 16384
		}
		f, err := topk.New(topk.Config{
			Levels:          1,
			EntriesPerLevel: entries,
			KeySize:         cfg.KeyBytes,
			NoEviction:      true,
			Hash:            hashing.NewBobFamily(0x70f1 ^ cfg.Seed),
		})
		if err != nil {
			return nil, fmt.Errorf("pisa: filter: %w", err)
		}
		sw.filter = f
		mem -= f.MemoryBytes()
		// With a pinned LeafWidth the sketch budget is implied by the
		// geometry, so no memory remains to be carved from.
		if mem <= 0 && cfg.LeafWidth == 0 {
			return nil, fmt.Errorf("pisa: memory %dB leaves nothing after a %dB filter",
				cfg.MemoryBytes, f.MemoryBytes())
		}
		if cfg.LeafWidth > 0 {
			mem = 0
		}
	}

	switch cfg.Program {
	case ProgramFCM, ProgramFCMTopK:
		s, err := core.New(core.Config{
			K:           cfg.K,
			Trees:       cfg.Trees,
			Widths:      cfg.Widths,
			MemoryBytes: mem,
			LeafWidth:   cfg.LeafWidth,
			Hash:        hashing.NewBobFamily(0xfc3141 ^ cfg.Seed),
			PerTreeHash: cfg.PerTreeHash,
		})
		if err != nil {
			return nil, fmt.Errorf("pisa: sketch: %w", err)
		}
		sw.sketch = s
		geom := FCMGeometry{
			Trees:       cfg.Trees,
			K:           cfg.K,
			LeafWidth:   s.LeafWidth(),
			Widths:      cfg.Widths,
			KeyBytes:    cfg.KeyBytes,
			Cardinality: true,
		}
		tcam, err := BuildTCAMCardinality(s.LeafWidth(), 0.002)
		if err != nil {
			return nil, err
		}
		sw.tcam = tcam
		geom.TCAMEntries = tcam.Entries()
		if cfg.Program == ProgramFCM {
			sw.alloc, err = CompileFCM(geom, limits)
		} else {
			sw.alloc, err = CompileFCMTopK(geom,
				TopKGeometry{Entries: cfg.TopKEntries, KeyBytes: cfg.KeyBytes}, limits)
		}
		if err != nil {
			return nil, err
		}
	case ProgramCMTopK:
		rows := cfg.CMRows
		if rows == 0 {
			rows = 2
		}
		cm, err := cmsketch.New(cmsketch.Config{
			MemoryBytes: mem,
			Rows:        rows,
			Bits:        8,
			Hash:        hashing.NewBobFamily(0x5ca1ab1e ^ cfg.Seed),
		})
		if err != nil {
			return nil, fmt.Errorf("pisa: cm: %w", err)
		}
		sw.cm = cm
		sw.alloc, err = CompileCMTopK(
			CMGeometry{Rows: rows, Width: cm.Width(), Bits: 8, KeyBytes: cfg.KeyBytes},
			TopKGeometry{Entries: cfg.TopKEntries, KeyBytes: cfg.KeyBytes}, limits)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("pisa: unknown program %d", cfg.Program)
	}
	return sw, nil
}

// Allocation returns the compiled resource placement.
func (s *Switch) Allocation() *Allocation { return s.alloc }

// Update processes one packet through the pipeline.
func (s *Switch) Update(key []byte, inc uint64) {
	if s.filter != nil {
		rk, rc := s.filter.Update(key, inc)
		if rc == 0 {
			return
		}
		key, inc = rk, rc
	}
	if s.sketch != nil {
		s.sketch.Update(key, inc)
		return
	}
	s.cm.Update(key, inc)
}

// Estimate answers the data-plane count query.
func (s *Switch) Estimate(key []byte) uint64 {
	var resid uint64
	if s.sketch != nil {
		resid = s.sketch.Estimate(key)
	} else {
		resid = s.cm.Estimate(key)
	}
	if s.filter == nil {
		return resid
	}
	count, found, flagged := s.filter.Lookup(key)
	if !found {
		return resid
	}
	if flagged {
		return count + resid
	}
	return count
}

// Cardinality answers the data-plane cardinality query via the TCAM table
// (Appendix C). Only the FCM programs support it.
func (s *Switch) Cardinality() (float64, error) {
	if s.sketch == nil || s.tcam == nil {
		return 0, fmt.Errorf("pisa: %s has no cardinality support", s.alloc.Name)
	}
	w0 := int(s.sketch.EmptyLeaves())
	if w0 < 1 {
		w0 = 1
	}
	n := s.tcam.Lookup(w0)
	if s.filter != nil {
		s.filter.Entries(func(_ []byte, _ uint64, flagged bool) {
			if !flagged {
				n++
			}
		})
	}
	return n, nil
}

// HeavyHitters enumerates filter residents at or above threshold (TopK
// programs only; plain FCM checks per-packet instead).
func (s *Switch) HeavyHitters(threshold uint64) map[string]uint64 {
	if s.filter == nil {
		return nil
	}
	hh := make(map[string]uint64)
	s.filter.Entries(func(key []byte, count uint64, flagged bool) {
		if flagged {
			if s.sketch != nil {
				count += s.sketch.Estimate(key)
			} else {
				count += s.cm.Estimate(key)
			}
		}
		if count >= threshold {
			hh[string(key)] = count
		}
	})
	return hh
}

// Sketch exposes the FCM registers for control-plane collection (nil for
// the CM program).
func (s *Switch) Sketch() *core.Sketch { return s.sketch }

// Filter exposes the hardware Top-K filter (nil for plain FCM).
func (s *Switch) Filter() *topk.Filter { return s.filter }

// CM exposes the light counter arrays of the CM(d)+TopK program (nil for
// the FCM programs).
func (s *Switch) CM() *cmsketch.Sketch { return s.cm }

// TCAM returns the installed cardinality table (nil for the CM program).
func (s *Switch) TCAM() *TCAMCardinality { return s.tcam }

// Reset clears the data plane for the next window.
func (s *Switch) Reset() {
	if s.filter != nil {
		s.filter.Reset()
	}
	if s.sketch != nil {
		s.sketch.Reset()
	}
	if s.cm != nil {
		s.cm.Reset()
	}
}
