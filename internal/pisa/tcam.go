package pisa

import (
	"fmt"
	"math"
	"sort"
)

// TCAMCardinality is the Appendix-C lookup table: it maps the observed
// number of empty stage-1 leaves w0 to a precomputed Linear-Counting
// estimate n̂ = −w1·ln(w0/w1). Entries are spaced by the estimator's
// sensitivity ∂n̂/∂w0 = −w1/w0 so the additional quantization error stays
// below a target fraction, shrinking the table by roughly two orders of
// magnitude versus one entry per possible w0.
type TCAMCardinality struct {
	w1 int
	// thresholds holds the w0 values with installed estimates, ascending.
	thresholds []int
	estimates  []float64
}

// BuildTCAMCardinality constructs the table for a tree with w1 leaves and
// a maximum additional relative error maxErr (the paper uses 0.2%).
func BuildTCAMCardinality(w1 int, maxErr float64) (*TCAMCardinality, error) {
	if w1 <= 1 {
		return nil, fmt.Errorf("pisa: w1 must exceed 1, got %d", w1)
	}
	if maxErr <= 0 {
		return nil, fmt.Errorf("pisa: maxErr must be positive, got %f", maxErr)
	}
	t := &TCAMCardinality{w1: w1}
	est := func(w0 int) float64 {
		return -float64(w1) * math.Log(float64(w0)/float64(w1))
	}
	// Walk w0 upward; install an entry, then skip ahead while the
	// estimate at the next installed entry stays within maxErr of every
	// skipped point. Queries round w0 up to the next installed entry, so
	// the error of using entry e for any w0 in (prev, e] is
	// est(w0) − est(e) ≤ maxErr·est(w0).
	w0 := 1
	for w0 <= w1 {
		t.thresholds = append(t.thresholds, w0)
		t.estimates = append(t.estimates, est(w0))
		if w0 == w1 {
			break
		}
		// Find the largest next threshold such that the first skipped
		// point (w0+1) is still within tolerance of the next entry:
		// est(w0+1) − est(next) ≤ maxErr · est(w0+1).
		lo, hi := w0+1, w1
		ref := est(w0 + 1)
		limit := ref * (1 - maxErr)
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if est(mid) >= limit {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		w0 = lo
	}
	return t, nil
}

// Lookup returns the installed estimate for an observed empty-leaf count,
// rounding w0 up to the nearest installed entry (the one-sided nearest
// match of Appendix C). Out-of-range inputs clamp.
func (t *TCAMCardinality) Lookup(w0 int) float64 {
	if w0 < 1 {
		w0 = 1
	}
	if w0 > t.w1 {
		w0 = t.w1
	}
	i := sort.SearchInts(t.thresholds, w0)
	if i == len(t.thresholds) {
		i--
	}
	return t.estimates[i]
}

// Exact returns the exact Linear-Counting estimate, for error comparison.
func (t *TCAMCardinality) Exact(w0 int) float64 {
	if w0 < 1 {
		w0 = 1
	}
	if w0 > t.w1 {
		w0 = t.w1
	}
	return -float64(t.w1) * math.Log(float64(w0)/float64(t.w1))
}

// Entries returns the installed entry count (the TCAM footprint).
func (t *TCAMCardinality) Entries() int { return len(t.thresholds) }

// MaxRelativeError scans every possible w0 and returns the worst-case
// additional relative error of the table versus the exact estimator.
func (t *TCAMCardinality) MaxRelativeError() float64 {
	worst := 0.0
	for w0 := 1; w0 < t.w1; w0++ {
		exact := t.Exact(w0)
		if exact <= 0 {
			continue
		}
		re := math.Abs(t.Lookup(w0)-exact) / exact
		if re > worst {
			worst = re
		}
	}
	return worst
}
