// Package pisa models a PISA (Tofino-like) switching pipeline: per-stage
// budgets of SRAM blocks, stateful ALUs, hash bits, TCAM, match-crossbar
// bytes and VLIW action slots across a fixed number of physical stages.
//
// A compiler places the FCM-Sketch, FCM+TopK and CM(d)+TopK data planes
// into stages under those budgets and reports the allocation, reproducing
// the resource results of §8.3 (Fig. 14a, Tables 4 and 5). A Switch then
// executes packets against the placed program; because every per-stage
// operation is a single read-modify-write on one register array — exactly
// Algorithm 1 — the hardware FCM-Sketch is bit-identical to the software
// one, while FCM+TopK inherits the single-level no-eviction filter
// approximation of §8.1.
package pisa

import (
	"fmt"
	"math"
)

// Limits describes the pipeline's per-stage resource budgets. The defaults
// follow public Tofino 1 figures closely enough to reproduce the paper's
// utilization percentages.
type Limits struct {
	// Stages is the number of physical match-action stages.
	Stages int
	// SRAMBlocksPerStage and SRAMBlockBytes size the per-stage SRAM.
	SRAMBlocksPerStage int
	SRAMBlockBytes     int
	// SALUsPerStage is the number of stateful ALUs (register actions).
	SALUsPerStage int
	// HashBitsPerStage is the hash-distribution-unit output width.
	HashBitsPerStage int
	// TCAMBlocksPerStage and TCAMBlockEntries size the ternary tables.
	TCAMBlocksPerStage int
	TCAMBlockEntries   int
	// CrossbarBytesPerStage is the match-input crossbar capacity.
	CrossbarBytesPerStage int
	// VLIWPerStage is the number of VLIW action slots.
	VLIWPerStage int
}

// DefaultLimits returns the Tofino-like model used throughout §8.
func DefaultLimits() Limits {
	return Limits{
		Stages:                12,
		SRAMBlocksPerStage:    80,
		SRAMBlockBytes:        16 << 10,
		SALUsPerStage:         4,
		HashBitsPerStage:      416,
		TCAMBlocksPerStage:    24,
		TCAMBlockEntries:      512,
		CrossbarBytesPerStage: 128,
		VLIWPerStage:          32,
	}
}

// StageAlloc is the resource usage of one pipeline stage.
type StageAlloc struct {
	SRAMBlocks    int
	SALUs         int
	HashBits      int
	TCAMBlocks    int
	CrossbarBytes int
	VLIW          int
}

// add accumulates o into s.
func (s *StageAlloc) add(o StageAlloc) {
	s.SRAMBlocks += o.SRAMBlocks
	s.SALUs += o.SALUs
	s.HashBits += o.HashBits
	s.TCAMBlocks += o.TCAMBlocks
	s.CrossbarBytes += o.CrossbarBytes
	s.VLIW += o.VLIW
}

// fits reports whether s is within the per-stage limits l.
func (s StageAlloc) fits(l Limits) bool {
	return s.SRAMBlocks <= l.SRAMBlocksPerStage &&
		s.SALUs <= l.SALUsPerStage &&
		s.HashBits <= l.HashBitsPerStage &&
		s.TCAMBlocks <= l.TCAMBlocksPerStage &&
		s.CrossbarBytes <= l.CrossbarBytesPerStage &&
		s.VLIW <= l.VLIWPerStage
}

// Allocation is a program's placement across stages.
type Allocation struct {
	Name   string
	Limits Limits
	Stages []StageAlloc
}

// NumStages returns the number of physical stages the program occupies.
func (a *Allocation) NumStages() int { return len(a.Stages) }

// Totals sums the per-stage usage.
func (a *Allocation) Totals() StageAlloc {
	var t StageAlloc
	for _, s := range a.Stages {
		t.add(s)
	}
	return t
}

// Utilization returns each resource's fraction of the whole pipeline's
// capacity, keyed by resource name — the quantities of Table 4.
func (a *Allocation) Utilization() map[string]float64 {
	l := a.Limits
	t := a.Totals()
	n := float64(l.Stages)
	return map[string]float64{
		"SRAM":          float64(t.SRAMBlocks) / (n * float64(l.SRAMBlocksPerStage)),
		"StatefulALUs":  float64(t.SALUs) / (n * float64(l.SALUsPerStage)),
		"HashBits":      float64(t.HashBits) / (n * float64(l.HashBitsPerStage)),
		"TCAM":          float64(t.TCAMBlocks) / (n * float64(l.TCAMBlocksPerStage)),
		"MatchCrossbar": float64(t.CrossbarBytes) / (n * float64(l.CrossbarBytesPerStage)),
		"VLIWActions":   float64(t.VLIW) / (n * float64(l.VLIWPerStage)),
	}
}

// checkFits validates every stage against the limits.
func (a *Allocation) checkFits() error {
	if len(a.Stages) > a.Limits.Stages {
		return fmt.Errorf("pisa: %s needs %d stages, pipeline has %d",
			a.Name, len(a.Stages), a.Limits.Stages)
	}
	for i, s := range a.Stages {
		if !s.fits(a.Limits) {
			return fmt.Errorf("pisa: %s stage %d exceeds per-stage limits: %+v", a.Name, i, s)
		}
	}
	return nil
}

// sramBlocks converts a byte size to SRAM blocks.
func sramBlocks(bytes int, l Limits) int {
	if bytes == 0 {
		return 0
	}
	return (bytes + l.SRAMBlockBytes - 1) / l.SRAMBlockBytes
}

// hashBitsFor is the hash width needed to index n entries.
func hashBitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// FCMGeometry describes an FCM-Sketch for compilation.
type FCMGeometry struct {
	Trees     int
	K         int
	LeafWidth int
	// Widths are per-stage counter bits, leaves first.
	Widths []int
	// KeyBytes is the flow-key width fed to the hash units (default 4).
	KeyBytes int
	// Cardinality adds the TCAM lookup table and empty-leaf tracking of
	// §3.3 / Appendix C. TCAMEntries is the installed table size.
	Cardinality bool
	TCAMEntries int
}

// CompileFCM places an FCM-Sketch into the pipeline: each tree level
// occupies one stage (trees run in parallel within the stage on separate
// stateful ALUs), plus one final stage accumulating the count-query result
// — the 4-stage layout of Table 4.
func CompileFCM(g FCMGeometry, l Limits) (*Allocation, error) {
	if g.Trees <= 0 || g.K < 2 || g.LeafWidth <= 0 || len(g.Widths) < 2 {
		return nil, fmt.Errorf("pisa: invalid FCM geometry %+v", g)
	}
	key := g.KeyBytes
	if key == 0 {
		key = 4
	}
	a := &Allocation{Name: "FCM-Sketch", Limits: l}
	w := g.LeafWidth
	for lvl, bits := range g.Widths {
		var s StageAlloc
		// One register array and one stateful ALU per tree at each level.
		s.SALUs = g.Trees
		s.SRAMBlocks = sramBlocks(g.Trees*w*bits/8, l)
		s.VLIW = g.Trees // carry/continue decision per tree
		if lvl == 0 {
			// Index hashes are computed once, at the first level.
			s.HashBits = g.Trees * hashBitsFor(w)
			s.CrossbarBytes = g.Trees * key
		}
		a.Stages = append(a.Stages, s)
		w /= g.K
	}
	// Final stage: combine per-tree partial sums into the count-query
	// result (min over trees).
	final := StageAlloc{VLIW: 1}
	if g.Cardinality {
		// §3.3/App. C: stateful ALUs track the number of empty leaves
		// (one per tree plus the aggregate) and a TCAM table maps the
		// count to the Linear-Counting estimate.
		final.SALUs = g.Trees + 1
		entries := g.TCAMEntries
		if entries == 0 {
			entries = 1024
		}
		final.TCAMBlocks = (entries + l.TCAMBlockEntries - 1) / l.TCAMBlockEntries
		final.HashBits = hashBitsFor(g.LeafWidth)
	}
	a.Stages = append(a.Stages, final)
	if err := a.checkFits(); err != nil {
		return nil, err
	}
	return a, nil
}

// TopKGeometry describes the hardware Top-K filter (§8.1): one level of
// key/count registers probed by a duplicate hash table.
type TopKGeometry struct {
	Entries  int
	KeyBytes int
}

// compileTopKStages returns the filter's stage allocations: key compare &
// swap handling needs its own stages ahead of the sketch (the paper's
// FCM+TopK occupies 4 additional stages).
func compileTopKStages(g TopKGeometry, l Limits) []StageAlloc {
	key := g.KeyBytes
	if key == 0 {
		key = 4
	}
	hashBits := hashBitsFor(g.Entries)
	// Stage A: key register (match/claim decision).
	stageA := StageAlloc{
		SALUs:         1,
		SRAMBlocks:    sramBlocks(g.Entries*key, l),
		HashBits:      hashBits,
		CrossbarBytes: key,
		VLIW:          1,
	}
	// Stage B: vote+ count register.
	stageB := StageAlloc{
		SALUs:      1,
		SRAMBlocks: sramBlocks(g.Entries*4, l),
		VLIW:       1,
	}
	// Stage C: vote− register and eviction decision.
	stageC := StageAlloc{
		SALUs:      1,
		SRAMBlocks: sramBlocks(g.Entries*4, l),
		VLIW:       1,
	}
	// Stage D: flag register and resubmission metadata.
	stageD := StageAlloc{
		SALUs:      1,
		SRAMBlocks: sramBlocks(g.Entries/8, l),
		VLIW:       1,
	}
	return []StageAlloc{stageA, stageB, stageC, stageD}
}

// CompileFCMTopK places FCM+TopK: the 4 filter stages followed by the FCM
// stages — 8 physical stages, matching Table 4.
func CompileFCMTopK(f FCMGeometry, t TopKGeometry, l Limits) (*Allocation, error) {
	fcmAlloc, err := CompileFCM(f, l)
	if err != nil {
		return nil, err
	}
	a := &Allocation{Name: "FCM+TopK", Limits: l}
	a.Stages = append(a.Stages, compileTopKStages(t, l)...)
	a.Stages = append(a.Stages, fcmAlloc.Stages...)
	if err := a.checkFits(); err != nil {
		return nil, err
	}
	return a, nil
}

// CMGeometry describes the CM(d)+TopK emulation of ElasticSketch used in
// §8.2.2: d arrays of (typically 8-bit) registers behind a Top-K filter.
type CMGeometry struct {
	Rows     int
	Width    int
	Bits     int
	KeyBytes int
}

// CompileCMTopK places CM(d)+TopK: the filter stages followed by the d
// counter arrays. Rows beyond the per-stage stateful-ALU budget spill into
// additional stages.
func CompileCMTopK(c CMGeometry, t TopKGeometry, l Limits) (*Allocation, error) {
	if c.Rows <= 0 || c.Width <= 0 {
		return nil, fmt.Errorf("pisa: invalid CM geometry %+v", c)
	}
	key := c.KeyBytes
	if key == 0 {
		key = 4
	}
	bits := c.Bits
	if bits == 0 {
		bits = 8
	}
	a := &Allocation{Name: fmt.Sprintf("CM(%d)+TopK", c.Rows), Limits: l}
	a.Stages = append(a.Stages, compileTopKStages(t, l)...)
	rowBlocks := sramBlocks(c.Width*bits/8, l)
	if rowBlocks > l.SRAMBlocksPerStage {
		return nil, fmt.Errorf("pisa: CM row of %d %d-bit counters exceeds a stage's SRAM", c.Width, bits)
	}
	rows := c.Rows
	first := true
	for rows > 0 {
		// Pack rows into the stage under both the stateful-ALU and the
		// SRAM budget; SRAM-heavy rows spill into later stages.
		n := 0
		for n < rows && n < l.SALUsPerStage && (n+1)*rowBlocks <= l.SRAMBlocksPerStage {
			n++
		}
		s := StageAlloc{
			SALUs:      n,
			SRAMBlocks: n * rowBlocks,
			VLIW:       n,
		}
		if first {
			s.HashBits = c.Rows * hashBitsFor(c.Width)
			s.CrossbarBytes = key
			first = false
		}
		a.Stages = append(a.Stages, s)
		rows -= n
	}
	// Final min-combine stage.
	a.Stages = append(a.Stages, StageAlloc{VLIW: 1})
	if err := a.checkFits(); err != nil {
		return nil, err
	}
	return a, nil
}

// PaperReported holds the resource figures the paper states for systems we
// do not re-implement on the pipeline (Tables 4 and 5 reference columns).
type PaperReported struct {
	Name        string
	Measurement string
	Stages      int
	// SALUFrac is the stateful-ALU utilization fraction; negative means
	// "BMv2 implementation only" in Table 5.
	SALUFrac float64
}

// Table5Reference returns the published comparison rows of Table 5.
func Table5Reference() []PaperReported {
	return []PaperReported{
		{Name: "SketchLearn", Measurement: "Generic", Stages: 9, SALUFrac: 0.6875},
		{Name: "QPipe", Measurement: "Quantile", Stages: 12, SALUFrac: 0.4583},
		{Name: "SpreadSketch", Measurement: "Superspreader", Stages: 6, SALUFrac: 0.1250},
		{Name: "HashPipe", Measurement: "Heavy hitter", Stages: -1, SALUFrac: -1},
		{Name: "ElasticSketch", Measurement: "Generic", Stages: -1, SALUFrac: -1},
		{Name: "UnivMon", Measurement: "Generic", Stages: -1, SALUFrac: -1},
	}
}

// SwitchP4Reference returns the baseline switch.p4 utilization row of
// Table 4 (fractions as published).
func SwitchP4Reference() map[string]float64 {
	return map[string]float64{
		"SRAM":          0.3052,
		"MatchCrossbar": 0.3750,
		"TCAM":          0.2812,
		"StatefulALUs":  0.2292,
		"HashBits":      0.3343,
		"VLIWActions":   0.3698,
	}
}
