package pisa

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
)

func k(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func fcmGeom() FCMGeometry {
	return FCMGeometry{
		Trees:     2,
		K:         8,
		LeafWidth: 524288, // ~1.3MB at 8/16/32 bits
		Widths:    []int{8, 16, 32},
	}
}

func TestCompileFCMStages(t *testing.T) {
	a, err := CompileFCM(fcmGeom(), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	// Table 4: FCM-Sketch occupies 4 physical stages.
	if a.NumStages() != 4 {
		t.Errorf("FCM stages = %d, want 4", a.NumStages())
	}
	// 2 trees × 3 levels = 6 stateful ALUs = 12.5% of 48 (Table 4).
	u := a.Utilization()
	if math.Abs(u["StatefulALUs"]-0.125) > 1e-9 {
		t.Errorf("sALU utilization %f, want 0.125", u["StatefulALUs"])
	}
	// SRAM ~9% for the 1.3MB configuration (paper: 9.38%).
	if u["SRAM"] < 0.06 || u["SRAM"] > 0.12 {
		t.Errorf("SRAM utilization %f, want ~0.09", u["SRAM"])
	}
	// No TCAM without the cardinality table.
	if u["TCAM"] != 0 {
		t.Errorf("TCAM utilization %f without cardinality", u["TCAM"])
	}
}

func TestCompileFCMWithCardinality(t *testing.T) {
	g := fcmGeom()
	g.Cardinality = true
	g.TCAMEntries = 2000
	a, err := CompileFCM(g, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	u := a.Utilization()
	if u["TCAM"] == 0 {
		t.Error("cardinality table allocated no TCAM")
	}
	// §8.3: cardinality adds stateful ALUs (paper: +10.42%).
	if math.Abs(u["StatefulALUs"]-0.125-float64(g.Trees+1)/48) > 1e-9 {
		t.Errorf("sALU utilization with cardinality %f", u["StatefulALUs"])
	}
}

func TestCompileFCMTopKStages(t *testing.T) {
	a, err := CompileFCMTopK(fcmGeom(), TopKGeometry{Entries: 16384}, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	// Table 4: FCM+TopK occupies 8 physical stages.
	if a.NumStages() != 8 {
		t.Errorf("FCM+TopK stages = %d, want 8", a.NumStages())
	}
	// 6 FCM + 4 filter sALUs = 10/48 = 20.83% (Table 4).
	u := a.Utilization()
	if math.Abs(u["StatefulALUs"]-10.0/48) > 1e-9 {
		t.Errorf("sALU utilization %f, want %f", u["StatefulALUs"], 10.0/48)
	}
}

func TestCompileCMTopK(t *testing.T) {
	// §8.2.2: ~1.3MB split over d rows of 8-bit registers.
	for _, rows := range []int{2, 4, 8} {
		a, err := CompileCMTopK(
			CMGeometry{Rows: rows, Width: 1300000 / rows, Bits: 8},
			TopKGeometry{Entries: 16384}, DefaultLimits())
		if err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		if a.NumStages() < 6 || a.NumStages() > DefaultLimits().Stages {
			t.Errorf("CM(%d)+TopK stages = %d out of range", rows, a.NumStages())
		}
		if got := a.Totals().SALUs; got != rows+4 {
			t.Errorf("CM(%d)+TopK sALUs = %d, want %d", rows, got, rows+4)
		}
	}
	// A single row too wide for one stage must be rejected.
	if _, err := CompileCMTopK(
		CMGeometry{Rows: 1, Width: 4 << 20, Bits: 8},
		TopKGeometry{Entries: 16}, DefaultLimits()); err == nil {
		t.Error("expected oversize-row error")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileFCM(FCMGeometry{}, DefaultLimits()); err == nil {
		t.Error("expected geometry error")
	}
	if _, err := CompileCMTopK(CMGeometry{}, TopKGeometry{Entries: 16}, DefaultLimits()); err == nil {
		t.Error("expected CM geometry error")
	}
	// A sketch too large for the pipeline must fail placement.
	g := fcmGeom()
	g.LeafWidth = 1 << 28 // ~0.7GB of leaves
	if _, err := CompileFCM(g, DefaultLimits()); err == nil {
		t.Error("expected per-stage SRAM overflow")
	}
	// Too many trees exceed the per-stage stateful ALU budget.
	g = fcmGeom()
	g.Trees = 5
	if _, err := CompileFCM(g, DefaultLimits()); err == nil {
		t.Error("expected per-stage sALU overflow")
	}
}

func TestAllocationTotals(t *testing.T) {
	a := &Allocation{Limits: DefaultLimits(), Stages: []StageAlloc{
		{SRAMBlocks: 2, SALUs: 1}, {SRAMBlocks: 3, SALUs: 2, HashBits: 10},
	}}
	tot := a.Totals()
	if tot.SRAMBlocks != 5 || tot.SALUs != 3 || tot.HashBits != 10 {
		t.Errorf("totals %+v", tot)
	}
}

func TestTable5Reference(t *testing.T) {
	rows := Table5Reference()
	if len(rows) != 6 {
		t.Fatalf("%d reference rows", len(rows))
	}
	if rows[0].Name != "SketchLearn" || rows[0].Stages != 9 {
		t.Errorf("row 0: %+v", rows[0])
	}
	ref := SwitchP4Reference()
	if ref["SRAM"] != 0.3052 {
		t.Errorf("switch.p4 SRAM %f", ref["SRAM"])
	}
}

// --- TCAM cardinality (Appendix C) ---

func TestTCAMBuildErrors(t *testing.T) {
	if _, err := BuildTCAMCardinality(1, 0.01); err == nil {
		t.Error("expected w1 error")
	}
	if _, err := BuildTCAMCardinality(100, 0); err == nil {
		t.Error("expected maxErr error")
	}
}

func TestTCAMErrorBound(t *testing.T) {
	// Appendix C at the paper's scale: w1 ≈ 495K leaves (1.3MB, two
	// 8-ary trees). Additional error bounded by 0.2% and the table about
	// two orders of magnitude smaller than one entry per w0.
	const w1 = 495616
	tab, err := BuildTCAMCardinality(w1, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.MaxRelativeError(); got > 0.002+1e-9 {
		t.Errorf("max extra error %f exceeds 0.002", got)
	}
	if compression := float64(w1) / float64(tab.Entries()); compression < 50 {
		t.Errorf("table has %d entries; compression %.0f×, want ≥50×", tab.Entries(), compression)
	}
	if tab.Entries() < 10 {
		t.Errorf("table suspiciously small: %d entries", tab.Entries())
	}
}

func TestTCAMLookupClamps(t *testing.T) {
	tab, err := BuildTCAMCardinality(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Lookup(0); got != tab.Exact(1) {
		t.Errorf("lookup(0) = %f want exact(1) = %f", got, tab.Exact(1))
	}
	if got := tab.Lookup(5000); got != 0 {
		t.Errorf("lookup beyond w1 = %f want 0", got)
	}
	if got := tab.Exact(1000); got != 0 {
		t.Errorf("exact at w1 = %f", got)
	}
}

// --- Switch execution ---

func TestSwitchFCMBitIdentical(t *testing.T) {
	// §8.2.1: the hardware FCM-Sketch must be bit-identical to the
	// software one given the same seeds.
	const seed = 77
	sw, err := NewSwitch(SwitchConfig{Program: ProgramFCM, MemoryBytes: 1 << 16, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	soft, err := core.New(core.Config{
		K: 8, Trees: 2, MemoryBytes: 1 << 16,
		Hash: hashing.NewBobFamily(0xfc3141 ^ seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		key := k(uint64(i % 3000))
		sw.Update(key, 1)
		soft.Update(key, 1)
	}
	for i := 0; i < 3000; i++ {
		key := k(uint64(i))
		if sw.Estimate(key) != soft.Estimate(key) {
			t.Fatalf("flow %d: hardware %d != software %d", i, sw.Estimate(key), soft.Estimate(key))
		}
	}
	for tr := 0; tr < 2; tr++ {
		for l := 0; l < 3; l++ {
			hv, sv := sw.Sketch().StageValues(tr, l), soft.StageValues(tr, l)
			for i := range hv {
				if hv[i] != sv[i] {
					t.Fatalf("registers differ at tree %d stage %d idx %d", tr, l, i)
				}
			}
		}
	}
}

func TestSwitchCardinalityTCAM(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Program: ProgramFCM, MemoryBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		sw.Update(k(uint64(i)), 1)
	}
	got, err := sw.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-n)/n > 0.05 {
		t.Errorf("TCAM cardinality %f want ~%d", got, n)
	}
}

func TestSwitchFCMTopK(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Program: ProgramFCMTopK, MemoryBytes: 1 << 19, TopKEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Allocation().NumStages() != 8 {
		t.Errorf("stages %d want 8", sw.Allocation().NumStages())
	}
	for h := uint64(0); h < 5; h++ {
		for i := 0; i < 2000; i++ {
			sw.Update(k(h), 1)
		}
	}
	for m := uint64(100); m < 3000; m++ {
		sw.Update(k(m), 1)
	}
	hh := sw.HeavyHitters(1500)
	for h := uint64(0); h < 5; h++ {
		if _, ok := hh[string(k(h))]; !ok {
			t.Errorf("heavy flow %d missed", h)
		}
	}
	// Estimates never underestimate.
	for h := uint64(0); h < 5; h++ {
		if got := sw.Estimate(k(h)); got < 2000 {
			t.Errorf("flow %d underestimated: %d", h, got)
		}
	}
}

func TestSwitchCMTopK(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Program: ProgramCMTopK, MemoryBytes: 1 << 19,
		CMRows: 2, TopKEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		sw.Update(k(uint64(i%500)), 1)
	}
	if got := sw.Estimate(k(0)); got < 20 {
		t.Errorf("estimate %d too low", got)
	}
	if _, err := sw.Cardinality(); err == nil {
		t.Error("CM program should not support TCAM cardinality")
	}
	if sw.Sketch() != nil || sw.TCAM() != nil {
		t.Error("CM program should expose no FCM sketch")
	}
}

func TestSwitchErrors(t *testing.T) {
	if _, err := NewSwitch(SwitchConfig{Program: Program(99), MemoryBytes: 1 << 16}); err == nil {
		t.Error("expected unknown program error")
	}
	if _, err := NewSwitch(SwitchConfig{Program: ProgramFCMTopK, MemoryBytes: 1000}); err == nil {
		t.Error("expected filter-exceeds-memory error")
	}
}

func TestSwitchReset(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Program: ProgramFCMTopK, MemoryBytes: 1 << 18, TopKEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	sw.Update(k(1), 100)
	sw.Reset()
	if got := sw.Estimate(k(1)); got != 0 {
		t.Errorf("after reset %d", got)
	}
}

func TestProgramString(t *testing.T) {
	if ProgramFCM.String() != "FCM-Sketch" || ProgramFCMTopK.String() != "FCM+TopK" ||
		ProgramCMTopK.String() != "CM+TopK" {
		t.Error("program names wrong")
	}
	if Program(9).String() == "" {
		t.Error("unknown program name empty")
	}
}
