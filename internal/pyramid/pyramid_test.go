package pyramid

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func k(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func newTest(t testing.TB, mem int) *Sketch {
	t.Helper()
	s, err := New(Config{MemoryBytes: mem})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 4}); err == nil {
		t.Error("expected error for tiny memory")
	}
	if _, err := New(Config{MemoryBytes: 1024, Hashes: 99}); err == nil {
		t.Error("expected error for too many hashes")
	}
}

func TestSmallCountsExact(t *testing.T) {
	s := newTest(t, 1<<16)
	for i := uint64(0); i < 20; i++ {
		for j := uint64(0); j <= i; j++ {
			s.Update(k(i), 1)
		}
	}
	for i := uint64(0); i < 20; i++ {
		if got := s.Estimate(k(i)); got != i+1 {
			t.Errorf("flow %d: got %d want %d", i, got, i+1)
		}
	}
}

func TestCarryAcrossLayers(t *testing.T) {
	// With the default independent hashing, a count far above the 4-bit
	// layer-1 capacity reconstructs exactly (no sibling carries on the
	// path).
	s := newTest(t, 1<<16)
	const n = 100000
	s.Update(k(7), n)
	if got := s.Estimate(k(7)); got != n {
		t.Errorf("large flow: got %d want %d", got, n)
	}
}

func TestWordAccelerationOverestimatesElephants(t *testing.T) {
	// Word acceleration merges the d carry paths a few layers up, so the
	// reconstruction of a single huge flow overshoots — never below the
	// truth, usually far above it.
	s, err := New(Config{MemoryBytes: 1 << 16, WordAcceleration: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	s.Update(k(7), n)
	got := s.Estimate(k(7))
	if got < n {
		t.Fatalf("underestimate: %d < %d", got, n)
	}
	if got == n {
		t.Logf("note: d counters did not share ancestors for this key")
	}
}

func TestBulkEqualsUnit(t *testing.T) {
	a := newTest(t, 1<<12)
	b := newTest(t, 1<<12)
	// Identical configs share hash functions, so states must match.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		key := k(uint64(rng.Intn(20)))
		inc := uint64(rng.Intn(30) + 1)
		a.Update(key, inc)
		for j := uint64(0); j < inc; j++ {
			b.Update(key, 1)
		}
	}
	for i := uint64(0); i < 20; i++ {
		if a.Estimate(k(i)) != b.Estimate(k(i)) {
			t.Fatalf("flow %d: bulk %d unit %d", i, a.Estimate(k(i)), b.Estimate(k(i)))
		}
	}
}

func TestNeverUnderestimates(t *testing.T) {
	s := newTest(t, 1<<12)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30000; i++ {
		id := uint64(rng.Intn(800))
		truth[id]++
		s.Update(k(id), 1)
	}
	for id, c := range truth {
		if got := s.Estimate(k(id)); got < c {
			t.Fatalf("flow %d underestimated: %d < %d", id, got, c)
		}
	}
}

func TestQuickOverestimate(t *testing.T) {
	s := newTest(t, 1<<10)
	truth := map[string]uint64{}
	f := func(key []byte, inc8 uint8) bool {
		inc := uint64(inc8) + 1
		s.Update(key, inc)
		truth[string(key)] += inc
		return s.Estimate(key) >= truth[string(key)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := newTest(t, 1 << 14)
	got := s.MemoryBytes()
	if got > 1<<14 || got < (1<<14)/2 {
		t.Errorf("memory %d not within (budget/2, budget] of %d", got, 1<<14)
	}
}

func TestReset(t *testing.T) {
	s := newTest(t, 1<<12)
	s.Update(k(3), 100000)
	s.Reset()
	if got := s.Estimate(k(3)); got != 0 {
		t.Errorf("after reset %d", got)
	}
}

func BenchmarkUpdatePCM(b *testing.B) {
	s := newTest(b, 1<<20)
	var key [8]byte
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i%100000))
		s.Update(key[:], 1)
	}
}
