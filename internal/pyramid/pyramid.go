// Package pyramid implements PyramidSketch combined with Count-Min update
// semantics — the PCM baseline of §7.1 (Yang et al., VLDB 2017 [60]).
//
// The structure is a pyramid of layers: layer 1 holds pure 4-bit counters;
// every higher layer halves the counter count and each counter carries two
// flag bits (left/right child overflowed) plus two counting bits; the top
// layer is a pure saturating counter. A counter that wraps its counting
// bits carries one unit into its parent and sets the corresponding child
// flag there.
//
// By default the d (=4) counters are drawn independently over the whole
// first layer, which keeps every carry chain exact. The published "word
// acceleration" packs the d counters into one 64-bit word so an update is
// a single memory access; because that also makes the d carry paths share
// ancestors a few layers up — inflating every candidate the query
// minimizes over for large flows — it is left opt-in
// (Config.WordAcceleration). The two modes bracket the published PCM's
// accuracy; see EXPERIMENTS.md.
package pyramid

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/hashing"
)

const (
	// layer-1 counters: 4 counting bits.
	l1Bits = 4
	l1Max  = 1<<l1Bits - 1
	// higher-layer counters: 2 counting bits + 2 flag bits.
	upBits = 2
	upMax  = 1<<upBits - 1
	// counters per 64-bit word at layer 1 (word acceleration).
	countersPerWord = 64 / l1Bits
)

// Sketch is a Pyramid+CM sketch (PCM).
type Sketch struct {
	// layer1 holds 4-bit counters packed conceptually; stored unpacked
	// for clarity with memory accounted at 4 bits each.
	layer1 []uint8
	// upper[l] holds layer l+2: low 2 bits count, bit 2 = left child
	// overflowed, bit 3 = right child overflowed.
	upper [][]uint8
	// top saturating counters.
	top []uint32
	// wordHash selects the 64-bit word when word acceleration is on
	// (nil under independent hashing).
	wordHash hashing.Hasher
	hashers  []hashing.Hasher
}

// Config parameterizes the sketch.
type Config struct {
	// MemoryBytes is the total budget, split across layers (layer l+1
	// gets half the counters of layer l, so layer 1 receives ~2/3 of it).
	MemoryBytes int
	// Hashes is the number of in-word hash functions d (paper: 4).
	Hashes int
	// WordAcceleration confines the d counters to one 64-bit word of the
	// first layer (single memory access per update, shared carry paths).
	WordAcceleration bool
	// Hash supplies the functions; nil selects BobHash.
	Hash hashing.Family
}

// New builds a PCM sketch.
func New(cfg Config) (*Sketch, error) {
	d := cfg.Hashes
	if d <= 0 {
		d = 4
	}
	if d > countersPerWord {
		return nil, fmt.Errorf("pyramid: %d hashes exceed %d counters per word", d, countersPerWord)
	}
	// Geometric layer sizing: layer1 w counters of 4 bits, then w/2,
	// w/4, ... of 4 bits each until ≤ 64 counters, then a 32-bit top.
	// Total bits ≈ 8w + 32·(w/2^L); shrink w word by word until the full
	// pyramid fits the budget.
	w := cfg.MemoryBytes / countersPerWord * countersPerWord
	for w >= countersPerWord && pyramidBits(w) > cfg.MemoryBytes*8 {
		w -= countersPerWord
	}
	if w < countersPerWord {
		return nil, fmt.Errorf("pyramid: memory %dB too small", cfg.MemoryBytes)
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0x9a11ad)
	}
	s := &Sketch{layer1: make([]uint8, w)}
	if cfg.WordAcceleration {
		s.wordHash = fam.New(63)
	}
	for i := 0; i < d; i++ {
		s.hashers = append(s.hashers, fam.New(i))
	}
	for n := w / 2; n > 64; n /= 2 {
		s.upper = append(s.upper, make([]uint8, n))
	}
	topN := w / 2
	for range s.upper {
		topN /= 2
	}
	if topN < 1 {
		topN = 1
	}
	s.top = make([]uint32, topN)
	return s, nil
}

// pyramidBits returns the total bit footprint of a pyramid with w layer-1
// counters.
func pyramidBits(w int) int {
	bits := w * l1Bits
	n := w / 2
	for ; n > 64; n /= 2 {
		bits += n * 4
	}
	if n < 1 {
		n = 1
	}
	return bits + n*32
}

// indices returns the d layer-1 counter indices for key: within one word
// under word acceleration, across the whole layer otherwise.
func (s *Sketch) indices(key []byte) []int {
	idx := make([]int, len(s.hashers))
	if s.wordHash != nil {
		word := hashing.Reduce(s.wordHash.Hash(key), len(s.layer1)/countersPerWord)
		base := word * countersPerWord
		for i, h := range s.hashers {
			idx[i] = base + int(h.Hash(key)%countersPerWord)
		}
		return idx
	}
	for i, h := range s.hashers {
		idx[i] = hashing.Reduce(h.Hash(key), len(s.layer1))
	}
	return idx
}

// Update implements sketch.Updater with CM semantics: all d counters are
// incremented, carrying into the pyramid on overflow.
func (s *Sketch) Update(key []byte, inc uint64) {
	for _, i := range s.indices(key) {
		s.add(i, inc)
	}
}

// add increments layer-1 counter i by inc with carry propagation.
func (s *Sketch) add(i int, inc uint64) {
	sum := uint64(s.layer1[i]) + inc
	s.layer1[i] = uint8(sum & l1Max)
	carry := sum >> l1Bits
	if carry == 0 {
		return
	}
	child := i
	for l := 0; l < len(s.upper); l++ {
		parent := child / 2
		cell := s.upper[l][parent]
		// Record which child overflowed.
		if child&1 == 0 {
			cell |= 1 << 2
		} else {
			cell |= 1 << 3
		}
		sum := uint64(cell&upMax) + carry
		cell = cell&^uint8(upMax) | uint8(sum&upMax)
		s.upper[l][parent] = cell
		carry = sum >> upBits
		if carry == 0 {
			return
		}
		child = parent
	}
	// Top layer: saturate.
	parent := child / 2
	if parent >= len(s.top) {
		parent = len(s.top) - 1
	}
	t := uint64(s.top[parent]) + carry
	if t > 0xffffffff {
		t = 0xffffffff
	}
	s.top[parent] = uint32(t)
}

// Estimate implements sketch.Estimator: minimum over the d reconstructed
// counter values.
func (s *Sketch) Estimate(key []byte) uint64 {
	min := uint64(1<<63 - 1)
	for _, i := range s.indices(key) {
		if v := s.reconstruct(i); v < min {
			min = v
		}
	}
	return min
}

// reconstruct follows flags upward accumulating the full value of layer-1
// counter i.
func (s *Sketch) reconstruct(i int) uint64 {
	v := uint64(s.layer1[i])
	weight := uint64(1) << l1Bits
	child := i
	for l := 0; l < len(s.upper); l++ {
		parent := child / 2
		cell := s.upper[l][parent]
		var flag uint8
		if child&1 == 0 {
			flag = 1 << 2
		} else {
			flag = 1 << 3
		}
		if cell&flag == 0 {
			return v
		}
		v += uint64(cell&upMax) * weight
		weight <<= upBits
		child = parent
	}
	parent := child / 2
	if parent >= len(s.top) {
		parent = len(s.top) - 1
	}
	v += uint64(s.top[parent]) * weight
	return v
}

// MemoryBytes implements sketch.Sized, accounting layer-1 and upper-layer
// counters at their true 4-bit width.
func (s *Sketch) MemoryBytes() int {
	bits := len(s.layer1) * l1Bits
	for _, u := range s.upper {
		bits += len(u) * 4
	}
	bits += len(s.top) * 32
	return bits / 8
}

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for i := range s.layer1 {
		s.layer1[i] = 0
	}
	for _, u := range s.upper {
		for i := range u {
			u[i] = 0
		}
	}
	for i := range s.top {
		s.top[i] = 0
	}
}
