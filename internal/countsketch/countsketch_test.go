package countsketch

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func k(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 100, Rows: 0}); err == nil {
		t.Error("expected rows error")
	}
	if _, err := New(Config{MemoryBytes: 8, Rows: 5}); err == nil {
		t.Error("expected memory error")
	}
}

func TestExactWhenSparse(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 16, Rows: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		s.Update(k(i), i+1)
	}
	for i := uint64(0); i < 20; i++ {
		if got := s.Estimate(k(i)); got != i+1 {
			t.Errorf("flow %d: got %d want %d", i, got, i+1)
		}
	}
}

func TestUnbiasedUnderCollisions(t *testing.T) {
	// Mean signed error across many flows should be near zero (unlike
	// Count-Min, which only overestimates).
	s, err := New(Config{MemoryBytes: 1 << 12, Rows: 5})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]int64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		id := uint64(rng.Intn(4000))
		truth[id]++
		s.Update(k(id), 1)
	}
	var sumErr float64
	var absErr float64
	for id, c := range truth {
		e := float64(s.EstimateSigned(k(id)) - c)
		sumErr += e
		absErr += math.Abs(e)
	}
	if absErr == 0 {
		t.Fatal("no collisions; shrink memory")
	}
	if math.Abs(sumErr) > 0.2*absErr {
		t.Errorf("mean signed error %f too biased (abs %f)", sumErr, absErr)
	}
}

func TestNegativeClamped(t *testing.T) {
	s, err := New(Config{MemoryBytes: 80, Rows: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key whose sign hash is negative relative to another.
	s.Update(k(1), 100)
	for i := uint64(2); i < 200; i++ {
		if s.EstimateSigned(k(i)) < 0 {
			if s.Estimate(k(i)) != 0 {
				t.Error("negative estimate not clamped")
			}
			return
		}
	}
	t.Skip("no negative estimate found in probe range")
}

func TestMedianEvenRows(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 14, Rows: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(k(9), 50)
	if got := s.Estimate(k(9)); got != 50 {
		t.Errorf("even-rows estimate %d want 50", got)
	}
}

func TestReset(t *testing.T) {
	s, _ := New(Config{MemoryBytes: 1 << 12, Rows: 3})
	s.Update(k(1), 10)
	s.Reset()
	if got := s.EstimateSigned(k(1)); got != 0 {
		t.Errorf("after reset %d", got)
	}
}

func TestMemory(t *testing.T) {
	s, _ := New(Config{MemoryBytes: 1 << 12, Rows: 4})
	if s.MemoryBytes() > 1<<12 {
		t.Errorf("memory %d over budget", s.MemoryBytes())
	}
}

func BenchmarkUpdateCountSketch(b *testing.B) {
	s, _ := New(Config{MemoryBytes: 1 << 20, Rows: 5})
	var key [8]byte
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i%100000))
		s.Update(key[:], 1)
	}
}
