// Package countsketch implements the Count-Sketch (Charikar et al.) used
// as the per-level frequency estimator inside UnivMon. Unlike Count-Min it
// is unbiased: each row adds ±inc by a sign hash, and the estimate is the
// median of the signed row reads.
package countsketch

import (
	"fmt"
	"sort"

	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/sketch"
)

// Compile-time contract checks.
var (
	_ sketch.Estimator  = (*Sketch)(nil)
	_ sketch.Sized      = (*Sketch)(nil)
	_ sketch.Resettable = (*Sketch)(nil)
	_ sketch.Mergeable  = (*Sketch)(nil)
)

// Sketch is an r×w Count-Sketch.
type Sketch struct {
	rows    [][]int64
	hashers []hashing.Hasher
	w       int
}

// Config parameterizes the sketch.
type Config struct {
	// MemoryBytes is the counter budget; width = MemoryBytes/(8·Rows).
	MemoryBytes int
	// Rows is the number of counter arrays (odd values give a clean
	// median; UnivMon typically uses 5).
	Rows int
	// Hash provides the row hash functions (index and sign are derived
	// from disjoint bits of one 64-bit hash per row). Nil selects BobHash.
	Hash hashing.Family
}

// New builds a Count-Sketch.
func New(cfg Config) (*Sketch, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("countsketch: Rows must be positive, got %d", cfg.Rows)
	}
	w := cfg.MemoryBytes / (8 * cfg.Rows)
	if w < 1 {
		return nil, fmt.Errorf("countsketch: memory %dB too small for %d rows", cfg.MemoryBytes, cfg.Rows)
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0xc0117e7)
	}
	s := &Sketch{w: w}
	for i := 0; i < cfg.Rows; i++ {
		s.rows = append(s.rows, make([]int64, w))
		s.hashers = append(s.hashers, fam.New(i))
	}
	return s, nil
}

// Update implements sketch.Updater.
func (s *Sketch) Update(key []byte, inc uint64) {
	for r, row := range s.rows {
		h := s.hashers[r].Hash(key)
		i := hashing.Reduce(h>>1, s.w)
		if h&1 == 1 {
			row[i] += int64(inc)
		} else {
			row[i] -= int64(inc)
		}
	}
}

// EstimateSigned returns the median signed estimate, which may be negative
// under heavy collision noise.
func (s *Sketch) EstimateSigned(key []byte) int64 {
	ests := make([]int64, len(s.rows))
	for r, row := range s.rows {
		h := s.hashers[r].Hash(key)
		v := row[hashing.Reduce(h>>1, s.w)]
		if h&1 == 0 {
			v = -v
		}
		ests[r] = v
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	n := len(ests)
	if n%2 == 1 {
		return ests[n/2]
	}
	return (ests[n/2-1] + ests[n/2]) / 2
}

// Estimate implements sketch.Estimator, clamping negatives to zero.
func (s *Sketch) Estimate(key []byte) uint64 {
	v := s.EstimateSigned(key)
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// MergeFrom implements sketch.Mergeable: counter-wise addition. Exact —
// Count-Sketch updates are linear, so the merged sketch is identical to one
// that ingested both streams.
func (s *Sketch) MergeFrom(other sketch.Estimator) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("countsketch: cannot merge %T into *countsketch.Sketch", other)
	}
	if len(s.rows) != len(o.rows) || s.w != o.w {
		return fmt.Errorf("countsketch: merge config mismatch: %dx%d vs %dx%d",
			len(s.rows), s.w, len(o.rows), o.w)
	}
	for r, row := range s.rows {
		for i, v := range o.rows[r] {
			row[i] += v
		}
	}
	return nil
}

// MemoryBytes implements sketch.Sized.
func (s *Sketch) MemoryBytes() int { return len(s.rows) * s.w * 8 }

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for _, row := range s.rows {
		for i := range row {
			row[i] = 0
		}
	}
}
