package sketch

import "unsafe"

// Raw byte views over typed counter storage, the word-wide fold plane's
// second adapter boundary (lanes.go widens values one at a time; these
// expose a lane's backing store so merges, equality prescreens and
// snapshot diffs can process eight bytes per load). The views alias their
// argument — they are reinterpretations, not copies — and are in native
// byte order: pair them with binary.NativeEndian loads/stores so a 64-bit
// word holds the lane's counters at their in-memory field positions on
// every platform. Callers must not grow the view or retain it past the
// lifetime of the slice it aliases.

// BytesU16 returns s's backing array as raw bytes, aliasing s.
func BytesU16(s []uint16) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*2)
}

// BytesU32 returns s's backing array as raw bytes, aliasing s.
func BytesU32(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}
