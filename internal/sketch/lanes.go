package sketch

// This file is the widening/narrowing adapter boundary between the typed
// counter lanes of internal/core and every consumer that speaks []uint32:
// the collect codec (whose v2 wire format is u32 values), the PISA
// compiler, StageValues/SetStageValues, and the differential harness's
// exact-oracle helpers. The data plane stores level-1 counters in one byte
// and level-2 counters in two (the hardware layout of the paper's §8:
// counters saturate at 254 and 65534, so the native width is the whole
// contract); the control plane keeps its uniform 32-bit view by widening
// on the way out and narrowing — with an explicit range check — on the way
// back in. Keeping the conversion here, rather than scattered through the
// codec and the tests, is what lets the wire bytes and golden vectors stay
// identical across storage layouts.

// WidenU8 copies src into dst value-for-value. dst must be at least as
// long as src; the filled prefix is returned.
func WidenU8(dst []uint32, src []uint8) []uint32 {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = uint32(v)
	}
	return dst
}

// WidenU16 copies src into dst value-for-value. dst must be at least as
// long as src; the filled prefix is returned.
func WidenU16(dst []uint32, src []uint16) []uint32 {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = uint32(v)
	}
	return dst
}

// NarrowU8 copies src into dst, which must be the same length. It returns
// the index of the first value that does not fit in a byte lane, or -1
// when every value fits (dst is fully written only in that case).
func NarrowU8(dst []uint8, src []uint32) int {
	for i, v := range src {
		if v > 0xff {
			return i
		}
	}
	for i, v := range src {
		dst[i] = uint8(v)
	}
	return -1
}

// NarrowU16 copies src into dst, which must be the same length. It returns
// the index of the first value that does not fit in a two-byte lane, or -1
// when every value fits (dst is fully written only in that case).
func NarrowU16(dst []uint16, src []uint32) int {
	for i, v := range src {
		if v > 0xffff {
			return i
		}
	}
	for i, v := range src {
		dst[i] = uint16(v)
	}
	return -1
}
