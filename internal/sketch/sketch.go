// Package sketch defines the small set of interfaces shared by every
// frequency-estimation structure in the repository, so the experiment
// harness, the ElasticSketch composition and the public API can treat
// FCM-Sketch and all baselines uniformly.
package sketch

// Updater ingests stream items. inc is the increment (1 for packet
// counting; the byte count for volume counting).
type Updater interface {
	Update(key []byte, inc uint64)
}

// BatchUpdater ingests many keys per call, amortizing per-call overheads
// (interface dispatch, lock acquisition, bounds setup) across the batch.
// Each key receives the same increment inc; the result is identical to
// calling Update once per key. Implementations must not retain the key
// slices — callers may reuse the backing buffers after the call returns.
type BatchUpdater interface {
	Updater
	UpdateBatch(keys [][]byte, inc uint64)
}

// Estimator answers point (count) queries.
type Estimator interface {
	Updater
	// Estimate returns the estimated count of key. Sketches in this
	// repository are one-sided overestimators except Count-Sketch.
	Estimate(key []byte) uint64
}

// Sized reports the structure's configured memory footprint in bytes
// (counter storage only, as the paper accounts memory).
type Sized interface {
	MemoryBytes() int
}

// CardinalityEstimator estimates the number of distinct keys seen.
type CardinalityEstimator interface {
	Cardinality() float64
}

// Resettable can be cleared for reuse across measurement windows.
type Resettable interface {
	Reset()
}

// Mergeable folds another structure of the same concrete type and
// configuration into the receiver. FCM-Sketch's merge is exact (§5 of the
// paper): the result is bit-identical to a structure that ingested both
// streams, which is what makes per-switch and per-shard collection
// composable. Other implementations (Count-Min, Count-Sketch) are exact
// too; compositions with a Top-K filter document their approximation.
type Mergeable interface {
	Estimator
	// MergeFrom folds other into the receiver. It fails when other is a
	// different concrete type or was built with a different
	// configuration (geometry or hash seeds).
	MergeFrom(other Estimator) error
}

// Snapshotter yields a consistent, independently-owned copy of the
// structure. Snapshots let readers (collectors, query servers) work on a
// frozen view while writers keep ingesting: the copy is taken under the
// structure's own short-lived synchronization, never holding a lock across
// encode or network I/O.
type Snapshotter interface {
	// SnapshotEstimator returns a point-in-time copy that the caller
	// owns. For sharded structures the copy is the exact merge of every
	// shard — bit-identical to a serial ingest of the same stream.
	// Implementations usually also expose a concretely-typed Snapshot
	// method; this one exists for generic consumers.
	SnapshotEstimator() Estimator
}

// Sketch is the full data-plane contract satisfied by fcm.Sketch: ingest,
// point queries, cardinality, memory accounting and window reuse.
type Sketch interface {
	Estimator
	Sized
	CardinalityEstimator
	Resettable
}
