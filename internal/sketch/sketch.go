// Package sketch defines the small set of interfaces shared by every
// frequency-estimation structure in the repository, so the experiment
// harness, the ElasticSketch composition and the public API can treat
// FCM-Sketch and all baselines uniformly.
package sketch

// Updater ingests stream items. inc is the increment (1 for packet
// counting; the byte count for volume counting).
type Updater interface {
	Update(key []byte, inc uint64)
}

// Estimator answers point (count) queries.
type Estimator interface {
	Updater
	// Estimate returns the estimated count of key. Sketches in this
	// repository are one-sided overestimators except Count-Sketch.
	Estimate(key []byte) uint64
}

// Sized reports the structure's configured memory footprint in bytes
// (counter storage only, as the paper accounts memory).
type Sized interface {
	MemoryBytes() int
}

// CardinalityEstimator estimates the number of distinct keys seen.
type CardinalityEstimator interface {
	Cardinality() float64
}

// Resettable can be cleared for reuse across measurement windows.
type Resettable interface {
	Reset()
}
