package fcm

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"github.com/fcmsketch/fcm/internal/metrics"
)

func k(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func TestNewSketchDefaults(t *testing.T) {
	s, err := NewSketch(Config{MemoryBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.K != 8 || cfg.Trees != 2 || len(cfg.Widths) != 3 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if s.MemoryBytes() > 1<<18 {
		t.Errorf("memory %d over budget", s.MemoryBytes())
	}
}

func TestNewSketchErrors(t *testing.T) {
	if _, err := NewSketch(Config{}); err == nil {
		t.Error("expected error for no sizing")
	}
	if _, err := NewSketch(Config{MemoryBytes: 8}); err == nil {
		t.Error("expected error for tiny memory")
	}
}

func TestSketchRoundTrip(t *testing.T) {
	s, err := NewSketch(Config{LeafWidth: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		s.Update(k(i), (i+1)*3)
	}
	for i := uint64(0); i < 100; i++ {
		if got := s.Estimate(k(i)); got != (i+1)*3 {
			t.Errorf("flow %d: %d want %d", i, got, (i+1)*3)
		}
	}
	if !s.IsHeavyHitter(k(99), 300) {
		t.Error("flow 99 should be a heavy hitter at 300")
	}
	if s.IsHeavyHitter(k(0), 4) {
		t.Error("flow 0 should not be a heavy hitter at 4")
	}
}

func TestSketchHeavyHitters(t *testing.T) {
	s, _ := NewSketch(Config{LeafWidth: 8192})
	var candidates [][]byte
	for i := uint64(0); i < 50; i++ {
		s.Update(k(i), (i+1)*10)
		candidates = append(candidates, k(i))
	}
	hh := s.HeavyHitters(candidates, 400)
	if len(hh) != 11 { // flows 39..49 have counts 400..500
		t.Errorf("heavy hitters: %d, want 11", len(hh))
	}
}

func TestSketchCardinalityAndReset(t *testing.T) {
	s, _ := NewSketch(Config{MemoryBytes: 1 << 18})
	for i := uint64(0); i < 3000; i++ {
		s.Update(k(i), 1)
	}
	if got := s.Cardinality(); math.Abs(got-3000)/3000 > 0.05 {
		t.Errorf("cardinality %f", got)
	}
	s.Reset()
	if got := s.Cardinality(); got != 0 {
		t.Errorf("cardinality after reset %f", got)
	}
}

func TestSeedChangesHashing(t *testing.T) {
	a, _ := NewSketch(Config{LeafWidth: 512, Seed: 1})
	b, _ := NewSketch(Config{LeafWidth: 512, Seed: 2})
	a.Update(k(7), 1)
	b.Update(k(7), 1)
	same := true
	for l := 0; l < 3 && same; l++ {
		av, bv := a.Core().StageValues(0, l), b.Core().StageValues(0, l)
		for i := range av {
			if av[i] != bv[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestFlowSizeDistribution(t *testing.T) {
	s, err := NewSketch(Config{LeafWidth: 16384})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	truth := make([]float64, 3001)
	for f := uint64(0); f < 5000; f++ {
		size := 1 + rng.Intn(4)
		if f%100 == 0 {
			size = 500 + rng.Intn(2000)
		}
		s.Update(k(f), uint64(size))
		truth[size]++
	}
	dist, err := s.FlowSizeDistribution(&EMOptions{Iterations: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w := metrics.WMRE(truth, dist); w > 0.4 {
		t.Errorf("WMRE %f", w)
	}
}

func TestTopKSketch(t *testing.T) {
	tk, err := NewTopK(TopKConfig{Config: Config{MemoryBytes: 1 << 18}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	stream := make([]uint64, 0, 100000)
	for h := uint64(0); h < 10; h++ {
		for i := 0; i < 4000; i++ {
			stream = append(stream, h)
		}
	}
	for m := 0; m < 60000; m++ {
		stream = append(stream, 100+uint64(rng.Intn(30000)))
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	truth := map[uint64]uint64{}
	for _, id := range stream {
		truth[id]++
		tk.Update(k(id), 1)
	}
	// Heavy flows: near-exact estimates and enumerable.
	hh := tk.HeavyHitters(3500)
	for h := uint64(0); h < 10; h++ {
		got, ok := hh[string(k(h))]
		if !ok {
			t.Errorf("heavy flow %d missed", h)
			continue
		}
		if math.Abs(float64(got)-4000) > 200 {
			t.Errorf("heavy flow %d: estimate %d want ~4000", h, got)
		}
	}
	// No underestimation anywhere.
	for id, c := range truth {
		if got := tk.Estimate(k(id)); got < c {
			t.Errorf("flow %d underestimated: %d < %d", id, got, c)
		}
	}
	// Cardinality in the right ballpark.
	card := tk.Cardinality()
	n := float64(len(truth))
	if math.Abs(card-n)/n > 0.1 {
		t.Errorf("cardinality %f want ~%f", card, n)
	}
}

func TestTopKErrors(t *testing.T) {
	if _, err := NewTopK(TopKConfig{Config: Config{MemoryBytes: 1000}, TopKEntries: 8192}); err == nil {
		t.Error("expected error when filter exceeds budget")
	}
}

func TestTopKDefaultArity(t *testing.T) {
	tk, err := NewTopK(TopKConfig{Config: Config{MemoryBytes: 1 << 18}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tk.Sketch().Config().K; got != 16 {
		t.Errorf("FCM+TopK default arity %d, want 16 (§7.4)", got)
	}
	if tk.FilterMemoryBytes()+tk.Sketch().MemoryBytes() > 1<<18 {
		t.Error("combined memory exceeds budget")
	}
	if tk.Filter() == nil {
		t.Error("Filter() accessor nil")
	}
}

func TestTopKFlowSizeDistribution(t *testing.T) {
	tk, err := NewTopK(TopKConfig{Config: Config{MemoryBytes: 1 << 18}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	truth := make([]float64, 4001)
	for f := uint64(0); f < 5000; f++ {
		size := 1 + rng.Intn(4)
		if f%100 == 0 {
			size = 1000 + rng.Intn(3000)
		}
		tk.Update(k(f), uint64(size))
		truth[size]++
	}
	dist, err := tk.FlowSizeDistribution(&EMOptions{Iterations: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w := metrics.WMRE(truth, dist); w > 0.4 {
		t.Errorf("WMRE %f", w)
	}
}

func TestFrameworkWindows(t *testing.T) {
	fw, err := NewFramework(Config{LeafWidth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: flow 1 heavy, flow 2 light.
	for i := 0; i < 1000; i++ {
		fw.Update(k(1), 1)
	}
	for i := 0; i < 10; i++ {
		fw.Update(k(2), 1)
	}
	if fw.WindowPackets() != 1010 {
		t.Errorf("window packets %d", fw.WindowPackets())
	}
	fw.Rotate()
	if fw.WindowPackets() != 0 {
		t.Error("packet counter not reset on rotate")
	}
	// Window 2: flow 1 quiet, flow 2 bursts.
	for i := 0; i < 900; i++ {
		fw.Update(k(2), 1)
	}
	if got := fw.PreviousEstimate(k(1)); got != 1000 {
		t.Errorf("previous estimate %d", got)
	}
	if got := fw.Estimate(k(2)); got != 900 {
		t.Errorf("current estimate %d", got)
	}
	hc, err := fw.HeavyChanges([][]byte{k(1), k(2), k(3), k(2)}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(hc) != 2 {
		t.Fatalf("heavy changes %v", hc)
	}
	for _, c := range hc {
		switch c.Key {
		case string(k(1)):
			if c.Delta() != -1000 {
				t.Errorf("flow 1 delta %d", c.Delta())
			}
		case string(k(2)):
			if c.Delta() != 890 {
				t.Errorf("flow 2 delta %d", c.Delta())
			}
		default:
			t.Errorf("unexpected change %+v", c)
		}
	}
	if _, err := fw.HeavyChanges(nil, 0); err == nil {
		t.Error("expected threshold error")
	}
}

func TestFrameworkAbsorb(t *testing.T) {
	cfg := Config{LeafWidth: 4096}
	fw, err := NewFramework(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fw.Update(k(1), 1)
	}
	// A "remote switch" that saw the same flow plus another one.
	remote, err := NewSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		remote.Update(k(1), 1)
		remote.Update(k(2), 1)
	}
	if err := fw.Absorb(remote, 100); err != nil {
		t.Fatal(err)
	}
	if got := fw.Estimate(k(1)); got != 150 {
		t.Errorf("absorbed estimate for flow 1 = %d, want 150", got)
	}
	if got := fw.Estimate(k(2)); got != 50 {
		t.Errorf("absorbed estimate for flow 2 = %d, want 50", got)
	}
	if got := fw.WindowPackets(); got != 200 {
		t.Errorf("window packets %d, want 200", got)
	}
	// Absorbed traffic rotates out with the window like direct updates.
	fw.Rotate()
	if got := fw.PreviousEstimate(k(2)); got != 50 {
		t.Errorf("previous estimate after rotate = %d, want 50", got)
	}
	if got := fw.Estimate(k(2)); got != 0 {
		t.Errorf("current estimate after rotate = %d, want 0", got)
	}
	// Config mismatch must be rejected, not silently folded.
	other, err := NewSketch(Config{LeafWidth: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Absorb(other, 0); err == nil {
		t.Error("expected config-mismatch error from Absorb")
	}
}

func TestFrameworkEntropy(t *testing.T) {
	fw, err := NewFramework(Config{LeafWidth: 8192})
	if err != nil {
		t.Fatal(err)
	}
	// 256 equal flows of 16 packets: H = log2(256) = 8.
	for f := uint64(0); f < 256; f++ {
		fw.Update(k(f), 16)
	}
	h, err := fw.Entropy(&EMOptions{Iterations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-8) > 0.2 {
		t.Errorf("entropy %f want ~8", h)
	}
}

func TestEntropyOf(t *testing.T) {
	if got := EntropyOf(nil); got != 0 {
		t.Errorf("empty entropy %f", got)
	}
	// 4 flows of size 1: H = 2 bits.
	if got := EntropyOf([]float64{0, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("uniform entropy %f want 2", got)
	}
}

func TestSketchMerge(t *testing.T) {
	cfg := Config{LeafWidth: 4096, Seed: 3}
	a, _ := NewSketch(cfg)
	b, _ := NewSketch(cfg)
	both, _ := NewSketch(cfg)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30000; i++ {
		key := k(uint64(rng.Intn(2000)))
		if i%2 == 0 {
			a.Update(key, 1)
		} else {
			b.Update(key, 1)
		}
		both.Update(key, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 2000; id++ {
		if a.Estimate(k(id)) != both.Estimate(k(id)) {
			t.Fatalf("merged estimate differs for flow %d: %d vs %d",
				id, a.Estimate(k(id)), both.Estimate(k(id)))
		}
	}
	if math.Abs(a.Cardinality()-both.Cardinality()) > 1e-9 {
		t.Errorf("merged cardinality %f vs %f", a.Cardinality(), both.Cardinality())
	}
}

func TestSketchMergeConfigMismatch(t *testing.T) {
	a, _ := NewSketch(Config{LeafWidth: 4096, Seed: 3})
	for _, cfg := range []Config{
		{LeafWidth: 4096, Seed: 4},           // different seed = different hashes
		{LeafWidth: 8192, Seed: 3},           // different geometry
		{LeafWidth: 4096, Seed: 3, Trees: 3}, // different tree count
	} {
		b, err := NewSketch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Merge(b); err == nil {
			t.Errorf("expected mismatch error for %+v", cfg)
		}
	}
}
