package fcm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Framework is the full FCM measurement framework of Fig. 1: an FCM-Sketch
// data plane plus the control-plane algorithms — flow size distribution
// (EM), entropy, and heavy-change detection across adjacent measurement
// windows.
//
// The data plane is a Sharded sketch, so Update is safe for any number of
// concurrent writers and Rotate is safe to call while updates are in
// flight: an update lands in exactly one window. Rotate closes the current
// window and keeps its exact merge as the previous window, so heavy
// changes can be detected by comparing count queries across the two
// (§4.4).
type Framework struct {
	cfg Config

	// mu orders window rotation against updates and queries: updates and
	// reads share the lock, Rotate takes it exclusively for the swap.
	mu   sync.RWMutex
	cur  *Sharded
	prev *Sketch // exact merge of the closed window

	// windowPackets counts packets in the current window; needed by the
	// entropy estimator and exposed for monitoring.
	windowPackets atomic.Uint64
	prevPackets   atomic.Uint64
}

// NewFramework builds a framework with a single-shard data plane — the
// right default for one writer goroutine. Use NewShardedFramework for
// multi-writer ingest.
func NewFramework(cfg Config) (*Framework, error) {
	return NewShardedFramework(cfg, 1)
}

// NewShardedFramework builds a framework whose current window is a Sharded
// sketch with the given shard count, so multiple goroutines can feed it
// concurrently (key-affinity via Update, or shard ownership via
// UpdateShard).
func NewShardedFramework(cfg Config, shards int) (*Framework, error) {
	cur, err := NewSharded(cfg, shards)
	if err != nil {
		return nil, err
	}
	prev, err := NewSketch(cur.Config())
	if err != nil {
		return nil, err
	}
	return &Framework{cfg: cur.Config(), cur: cur, prev: prev}, nil
}

// Update records inc occurrences of key in the current window. Safe for
// concurrent use, including concurrently with Rotate.
func (f *Framework) Update(key []byte, inc uint64) {
	f.mu.RLock()
	f.cur.Update(key, inc)
	f.windowPackets.Add(inc)
	f.mu.RUnlock()
}

// UpdateShard records inc occurrences of key on shard i of the current
// window — the ownership path for pipelines with one shard per writer.
func (f *Framework) UpdateShard(i int, key []byte, inc uint64) {
	f.mu.RLock()
	f.cur.UpdateShard(i, key, inc)
	f.windowPackets.Add(inc)
	f.mu.RUnlock()
}

// Rotate closes the current window: its exact merge becomes the previous
// window and the cleared shards start the next one. Updates concurrent
// with Rotate land in exactly one of the two windows.
func (f *Framework) Rotate() { f.RotateClosed() }

// RotateClosed is the windowed-mode rotation hook: it rotates like Rotate
// and additionally returns the closed window's exact merge together with
// the number of packets that window recorded. Temporal layers (such as
// internal/window's ring of sketches) call it to file each closed window
// as an immutable bucket; the returned sketch is also retained as the
// previous window for HeavyChanges, so callers must treat it as read-only.
func (f *Framework) RotateClosed() (*Sketch, uint64) {
	f.mu.Lock()
	closed := f.cur.Rotate()
	packets := f.windowPackets.Swap(0)
	f.prev = closed
	f.prevPackets.Store(packets)
	f.mu.Unlock()
	return closed, packets
}

// Config returns the framework's effective configuration (defaults
// applied), so windowed layers can build merge-compatible sketches.
func (f *Framework) Config() Config { return f.cfg }

// Absorb folds a remote sketch into the current window — the aggregation
// step of network-wide monitoring: switch snapshots are collected, restored,
// and absorbed here, so the framework's queries answer over the union of
// the streams. The sketch must share the framework's configuration (the
// merge is exact, per §5). packets is how many packets sk represents and
// feeds the window packet counter used by the entropy estimator; pass 0
// when unknown. Safe for concurrent use, including concurrently with
// Update and Rotate.
func (f *Framework) Absorb(sk *Sketch, packets uint64) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if err := f.cur.MergeFrom(sk); err != nil {
		return err
	}
	f.windowPackets.Add(packets)
	return nil
}

// Shards returns the data plane's shard count.
func (f *Framework) Shards() int { return f.cur.Shards() }

// Estimate returns the current window's count estimate for key.
func (f *Framework) Estimate(key []byte) uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.cur.Estimate(key)
}

// PreviousEstimate returns the previous window's count estimate for key.
func (f *Framework) PreviousEstimate(key []byte) uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.prev.Estimate(key)
}

// Cardinality estimates the current window's distinct flows.
func (f *Framework) Cardinality() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.cur.Cardinality()
}

// WindowPackets returns the number of packets recorded in the current
// window.
func (f *Framework) WindowPackets() uint64 { return f.windowPackets.Load() }

// Sketch returns an exact-merge snapshot of the current window's sketch.
func (f *Framework) Sketch() *Sketch {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.cur.Snapshot()
}

// FlowSizeDistribution estimates the current window's flow-size
// distribution with EM (§4.2).
func (f *Framework) FlowSizeDistribution(opt *EMOptions) ([]float64, error) {
	return f.Sketch().FlowSizeDistribution(opt)
}

// Entropy estimates the current window's flow entropy from the EM
// distribution: H = −Σ_k n_k·(k/m)·log2(k/m) (§4.4).
func (f *Framework) Entropy(opt *EMOptions) (float64, error) {
	dist, err := f.FlowSizeDistribution(opt)
	if err != nil {
		return 0, err
	}
	return EntropyOf(dist), nil
}

// EntropyOf computes flow entropy from a flow-size distribution, where
// dist[k] is the number of flows of size k.
func EntropyOf(dist []float64) float64 {
	m := 0.0
	for k := 1; k < len(dist); k++ {
		m += float64(k) * dist[k]
	}
	if m == 0 {
		return 0
	}
	h := 0.0
	for k := 1; k < len(dist); k++ {
		if dist[k] <= 0 {
			continue
		}
		p := float64(k) / m
		h -= dist[k] * p * math.Log2(p)
	}
	return h
}

// HeavyChange describes one detected heavy change (§4.4).
type HeavyChange struct {
	// Key is the flow key.
	Key string
	// Previous and Current are the two windows' count estimates.
	Previous, Current uint64
}

// Delta returns the signed change Current−Previous.
func (h HeavyChange) Delta() int64 { return int64(h.Current) - int64(h.Previous) }

// HeavyChanges compares candidate flows across the previous and current
// windows and returns those whose estimates changed by at least threshold.
// Per §4.4, a flow whose size changed by ≥ threshold must exceed the
// threshold in at least one window, so candidates are typically the union
// of both windows' heavy hitters.
func (f *Framework) HeavyChanges(candidates [][]byte, threshold uint64) ([]HeavyChange, error) {
	if threshold == 0 {
		return nil, fmt.Errorf("fcm: heavy-change threshold must be positive")
	}
	// One consistent snapshot per window for the whole candidate scan.
	f.mu.RLock()
	cur, prev := f.cur.Snapshot(), f.prev
	f.mu.RUnlock()
	var out []HeavyChange
	seen := make(map[string]bool, len(candidates))
	for _, k := range candidates {
		ks := string(k)
		if seen[ks] {
			continue
		}
		seen[ks] = true
		p := prev.Estimate(k)
		c := cur.Estimate(k)
		d := int64(c) - int64(p)
		if d >= int64(threshold) || -d >= int64(threshold) {
			out = append(out, HeavyChange{Key: ks, Previous: p, Current: c})
		}
	}
	return out, nil
}
