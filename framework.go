package fcm

import (
	"fmt"
	"math"
)

// Framework is the full FCM measurement framework of Fig. 1: an FCM-Sketch
// in the "data plane" plus the control-plane algorithms — flow size
// distribution (EM), entropy, and heavy-change detection across adjacent
// measurement windows.
//
// Updates go to the current window's sketch. Rotate closes the window and
// keeps it as the previous window, so heavy changes can be detected by
// comparing count queries across the two (§4.4).
type Framework struct {
	cfg  Config
	cur  *Sketch
	prev *Sketch
	// windowPackets counts packets in the current window; needed by the
	// entropy estimator and exposed for monitoring.
	windowPackets uint64
	prevPackets   uint64
}

// NewFramework builds a framework with double-buffered sketches.
func NewFramework(cfg Config) (*Framework, error) {
	cur, err := NewSketch(cfg)
	if err != nil {
		return nil, err
	}
	prev, err := NewSketch(cfg)
	if err != nil {
		return nil, err
	}
	return &Framework{cfg: cur.Config(), cur: cur, prev: prev}, nil
}

// Update records inc occurrences of key in the current window.
func (f *Framework) Update(key []byte, inc uint64) {
	f.cur.Update(key, inc)
	f.windowPackets += inc
}

// Rotate closes the current window: the current sketch becomes the
// previous one and a cleared sketch starts the next window.
func (f *Framework) Rotate() {
	f.prev, f.cur = f.cur, f.prev
	f.cur.Reset()
	f.prevPackets = f.windowPackets
	f.windowPackets = 0
}

// Estimate returns the current window's count estimate for key.
func (f *Framework) Estimate(key []byte) uint64 { return f.cur.Estimate(key) }

// PreviousEstimate returns the previous window's count estimate for key.
func (f *Framework) PreviousEstimate(key []byte) uint64 { return f.prev.Estimate(key) }

// Cardinality estimates the current window's distinct flows.
func (f *Framework) Cardinality() float64 { return f.cur.Cardinality() }

// WindowPackets returns the number of packets recorded in the current
// window.
func (f *Framework) WindowPackets() uint64 { return f.windowPackets }

// Sketch returns the current window's sketch.
func (f *Framework) Sketch() *Sketch { return f.cur }

// FlowSizeDistribution estimates the current window's flow-size
// distribution with EM (§4.2).
func (f *Framework) FlowSizeDistribution(opt *EMOptions) ([]float64, error) {
	return f.cur.FlowSizeDistribution(opt)
}

// Entropy estimates the current window's flow entropy from the EM
// distribution: H = −Σ_k n_k·(k/m)·log2(k/m) (§4.4).
func (f *Framework) Entropy(opt *EMOptions) (float64, error) {
	dist, err := f.FlowSizeDistribution(opt)
	if err != nil {
		return 0, err
	}
	return EntropyOf(dist), nil
}

// EntropyOf computes flow entropy from a flow-size distribution, where
// dist[k] is the number of flows of size k.
func EntropyOf(dist []float64) float64 {
	m := 0.0
	for k := 1; k < len(dist); k++ {
		m += float64(k) * dist[k]
	}
	if m == 0 {
		return 0
	}
	h := 0.0
	for k := 1; k < len(dist); k++ {
		if dist[k] <= 0 {
			continue
		}
		p := float64(k) / m
		h -= dist[k] * p * math.Log2(p)
	}
	return h
}

// HeavyChange describes one detected heavy change (§4.4).
type HeavyChange struct {
	// Key is the flow key.
	Key string
	// Previous and Current are the two windows' count estimates.
	Previous, Current uint64
}

// Delta returns the signed change Current−Previous.
func (h HeavyChange) Delta() int64 { return int64(h.Current) - int64(h.Previous) }

// HeavyChanges compares candidate flows across the previous and current
// windows and returns those whose estimates changed by at least threshold.
// Per §4.4, a flow whose size changed by ≥ threshold must exceed the
// threshold in at least one window, so candidates are typically the union
// of both windows' heavy hitters.
func (f *Framework) HeavyChanges(candidates [][]byte, threshold uint64) ([]HeavyChange, error) {
	if threshold == 0 {
		return nil, fmt.Errorf("fcm: heavy-change threshold must be positive")
	}
	var out []HeavyChange
	seen := make(map[string]bool, len(candidates))
	for _, k := range candidates {
		ks := string(k)
		if seen[ks] {
			continue
		}
		seen[ks] = true
		prev := f.prev.Estimate(k)
		cur := f.cur.Estimate(k)
		d := int64(cur) - int64(prev)
		if d >= int64(threshold) || -d >= int64(threshold) {
			out = append(out, HeavyChange{Key: ks, Previous: prev, Current: cur})
		}
	}
	return out, nil
}
